#include <gtest/gtest.h>

#include <sstream>

#include "core/pipeline.h"
#include "scan/export.h"
#include "io/loaders.h"
#include "test_world.h"

namespace offnet::io {
namespace {

/// Export a simulated snapshot to the on-disk formats, load it back, and
/// verify the pipeline produces the same footprints either way.
TEST(IoRoundTripTest, PipelineEquivalence) {
  const scan::World& world = testing::tiny_world();
  std::size_t t = net::snapshot_count() - 1;
  scan::ScanSnapshot snapshot = world.scan(t, scan::ScannerKind::kRapid7);

  std::ostringstream rel, org, pfx, certs, hosts, headers;
  scan::export_dataset(world, snapshot,
                       io::ExportStreams{rel, org, pfx, certs, hosts, headers});

  std::istringstream rel_in(rel.str());
  std::istringstream org_in(org.str());
  std::istringstream pfx_in(pfx.str());
  std::istringstream certs_in(certs.str());
  std::istringstream hosts_in(hosts.str());
  Dataset dataset = load_dataset(rel_in, org_in, pfx_in, certs_in, hosts_in,
                                 net::study_snapshots()[t]);
  std::istringstream headers_in(headers.str());
  dataset.add_headers(headers_in);

  EXPECT_EQ(dataset.snapshot().certs().size(), snapshot.certs().size());

  core::OffnetPipeline direct(world.topology(), world.ip2as(), world.certs(),
                              world.roots());
  core::OffnetPipeline loaded(dataset.topology(), dataset.ip2as(),
                              dataset.certs(), dataset.roots());
  auto direct_result = direct.run(snapshot);
  auto loaded_result = loaded.run(dataset.snapshot());

  ASSERT_EQ(direct_result.per_hg.size(), loaded_result.per_hg.size());
  for (std::size_t h = 0; h < direct_result.per_hg.size(); ++h) {
    const auto& a = direct_result.per_hg[h];
    const auto& b = loaded_result.per_hg[h];
    SCOPED_TRACE(a.name);
    EXPECT_EQ(a.onnet_ips, b.onnet_ips);
    EXPECT_EQ(a.candidate_ips, b.candidate_ips);
    EXPECT_EQ(a.confirmed_ips, b.confirmed_ips);
    // AsIds differ between the two topologies; compare ASNs.
    auto asns = [](const topo::Topology& topology,
                   const std::vector<topo::AsId>& ids) {
      std::vector<net::Asn> out;
      for (topo::AsId id : ids) out.push_back(topology.as(id).asn);
      std::sort(out.begin(), out.end());
      return out;
    };
    EXPECT_EQ(asns(world.topology(), a.candidate_ases),
              asns(dataset.topology(), b.candidate_ases));
    EXPECT_EQ(asns(world.topology(), a.confirmed_or_ases),
              asns(dataset.topology(), b.confirmed_or_ases));
  }
  EXPECT_EQ(direct_result.stats.valid_cert_ips,
            loaded_result.stats.valid_cert_ips);
  EXPECT_EQ(direct_result.stats.invalid_cert_ips,
            loaded_result.stats.invalid_cert_ips);
}

TEST(IoRoundTripTest, ExportFormatsParse) {
  const scan::World& world = testing::tiny_world();
  scan::ScanSnapshot snapshot = world.scan(5, scan::ScannerKind::kRapid7);
  std::ostringstream rel, org, pfx, certs, hosts, headers;
  scan::export_dataset(world, snapshot,
                       io::ExportStreams{rel, org, pfx, certs, hosts, headers});

  std::istringstream rel_in(rel.str());
  auto graph = load_as_relationships(rel_in);
  EXPECT_EQ(graph.graph.as_count(), world.topology().as_count());

  std::istringstream pfx_in(pfx.str());
  auto map = load_prefix2as(pfx_in);
  EXPECT_EQ(map.prefix_count(), world.ip2as().at(5).prefix_count());
}

}  // namespace
}  // namespace offnet::io
