// Streaming-ingestion engine tests (DESIGN.md §14): the chunked line
// reader's edge cases (CRLF, chunk-straddling lines, missing final
// newline), the bounded ring + driver backpressure guarantees, the
// bit-identity of streamed loads vs materialized loads at any thread
// count and batch geometry, record-indexed corruption equivalence, and
// the early (provable) error-budget abort.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "io/corruption.h"
#include "io/loaders.h"
#include "io/stream/arena.h"
#include "io/stream/driver.h"
#include "io/stream/reader.h"
#include "io/stream/ring.h"
#include "obs/exporter.h"
#include "obs/metrics.h"

namespace offnet::io {
namespace {

// ---------------------------------------------------------------- fixtures

constexpr const char* kRelationships = R"(# CAIDA serial-1
100|200|-1
100|300|-1
200|400|-1
100|101|0
101|600|-1
)";

constexpr const char* kOrganizations = R"(# org_id|name then asn|org_id
ORG-G|Google LLC
ORG-I|Island ISP
100|ORG-I
101|ORG-I
200|ORG-I
300|ORG-I
400|ORG-I
600|ORG-G
)";

constexpr const char* kPrefix2As =
    "1.0.0.0\t20\t200\n"
    "1.0.16.0\t20\t400\n"
    "1.0.48.0\t20\t600\n";

constexpr const char* kCertificates =
    "c-google\tGoogle LLC\t2019-01-01\t2022-01-01\ttrusted\t*.google.com\n"
    "c-self\tSelf Org\t2019-01-01\t2022-01-01\tself-signed\tself.example\n"
    "c-other\tIsland ISP\t2019-01-01\t2022-01-01\ttrusted\twww.island.example\n";

constexpr const char* kHosts =
    "1.0.48.10\tc-google\n"
    "1.0.0.10\tc-google\n"
    "1.0.16.10\tc-other\n"
    "1.0.0.11\tc-self\n";

constexpr const char* kHeaders =
    "1.0.48.10\t443\tServer: gws|Content-Type: text/html\n"
    "1.0.0.10\t443\tServer: gws\n"
    "1.0.16.10\t80\tServer: nginx\n";

Dataset load_materialized(const ReadOptions& options, LoadReport* report) {
  std::istringstream rel(kRelationships), org(kOrganizations),
      pfx(kPrefix2As), certs(kCertificates), hosts(kHosts);
  Dataset dataset =
      load_dataset(rel, org, pfx, certs, hosts, net::YearMonth(2019, 10),
                   options, report);
  std::istringstream headers(kHeaders);
  dataset.add_headers(headers, options, report);
  return dataset;
}

Dataset load_streamed(const stream::StreamOptions& stream,
                      const ReadOptions& options, LoadReport* report) {
  std::istringstream rel(kRelationships), org(kOrganizations),
      pfx(kPrefix2As), certs(kCertificates), hosts(kHosts);
  Dataset dataset =
      load_dataset_stream(rel, org, pfx, certs, hosts,
                          net::YearMonth(2019, 10), stream, options, report);
  std::istringstream headers(kHeaders);
  dataset.add_headers(headers, stream, options, report);
  return dataset;
}

std::string metrics_json(const LoadReport& report) {
  obs::Registry registry;
  report.export_metrics(registry);
  return obs::MetricsExporter::deterministic_json(registry);
}

/// Everything the pipeline consumes from a load, flattened for equality
/// checks: scan records in order, header corpuses in visit order, and
/// the report's accounting.
std::string dataset_fingerprint(const Dataset& dataset,
                                const LoadReport& report) {
  std::ostringstream out;
  out << report.summary() << '\n' << metrics_json(report) << '\n';
  out << "ases=" << dataset.topology().as_count() << '\n';
  for (const scan::CertScanRecord& record : dataset.snapshot().certs()) {
    out << record.ip.value() << ' ' << record.cert << '\n';
  }
  for (bool https : {true, false}) {
    dataset.snapshot().for_each_headers(
        https, [&](net::IPv4 ip, const http::HeaderMap& headers) {
          out << (https ? "https " : "http ") << ip.value();
          for (const http::Header& header : headers.all()) {
            out << ' ' << header.name << '=' << header.value;
          }
          out << '\n';
        });
  }
  return out.str();
}

// ------------------------------------------------------------- LineReader

TEST(LineReaderTest, SplitsLinesAcrossAnyChunkSize) {
  const std::string text = "alpha\nbeta\r\n\ngamma longer line\nlast";
  for (std::size_t chunk : {std::size_t{1}, std::size_t{2}, std::size_t{3},
                            std::size_t{7}, std::size_t{64 * 1024}}) {
    std::istringstream in(text);
    stream::LineReader reader(in, chunk);
    stream::Line line;

    ASSERT_TRUE(reader.next(line)) << "chunk=" << chunk;
    EXPECT_EQ(line.text, "alpha");
    EXPECT_EQ(line.number, 1u);
    EXPECT_EQ(line.raw_bytes, 6u);
    EXPECT_TRUE(line.had_newline);

    ASSERT_TRUE(reader.next(line));
    EXPECT_EQ(line.text, "beta") << "CRLF must be stripped (chunk=" << chunk
                                 << ")";
    EXPECT_EQ(line.raw_bytes, 6u);  // '\r' and '\n' still count as read

    ASSERT_TRUE(reader.next(line));
    EXPECT_EQ(line.text, "");
    EXPECT_EQ(line.number, 3u);

    ASSERT_TRUE(reader.next(line));
    EXPECT_EQ(line.text, "gamma longer line");

    ASSERT_TRUE(reader.next(line));
    EXPECT_EQ(line.text, "last");
    EXPECT_FALSE(line.had_newline) << "final line has no terminator";
    EXPECT_EQ(line.number, 5u);

    EXPECT_FALSE(reader.next(line));
    EXPECT_EQ(reader.bytes_consumed(), text.size());
  }
}

TEST(LineReaderTest, StripsAtMostOneCarriageReturn) {
  std::istringstream in("value\r\r\n");
  stream::LineReader reader(in, 4);
  stream::Line line;
  ASSERT_TRUE(reader.next(line));
  EXPECT_EQ(line.text, "value\r") << "only the terminator's \\r is stripped";
}

TEST(LineReaderTest, StripsCarriageReturnOnUnterminatedFinalLine) {
  std::istringstream in("a\nfinal\r");
  stream::LineReader reader(in, 3);
  stream::Line line;
  ASSERT_TRUE(reader.next(line));
  ASSERT_TRUE(reader.next(line));
  EXPECT_EQ(line.text, "final");
  EXPECT_FALSE(line.had_newline);
}

TEST(LineReaderTest, EmptyInput) {
  std::istringstream in("");
  stream::LineReader reader(in, 8);
  stream::Line line;
  EXPECT_FALSE(reader.next(line));
  EXPECT_EQ(reader.bytes_consumed(), 0u);
}

// ------------------------------------------------------------ BoundedRing

TEST(BoundedRingTest, TryPushRespectsCapacity) {
  stream::BoundedRing<int> ring(2);
  int a = 1, b = 2, c = 3;
  EXPECT_TRUE(ring.try_push(a));
  EXPECT_TRUE(ring.try_push(b));
  EXPECT_FALSE(ring.try_push(c)) << "full ring must refuse";
  EXPECT_EQ(ring.size(), 2u);
  EXPECT_EQ(ring.pop().value(), 1);
  EXPECT_TRUE(ring.try_push(c));
}

TEST(BoundedRingTest, BlockingPushWaitsForSpace) {
  stream::BoundedRing<int> ring(1);
  int a = 1, b = 2;
  ASSERT_TRUE(ring.push(a));
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    int value = b;
    ring.push(value);  // blocks until the consumer pops
    pushed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(pushed.load()) << "push must block while the ring is full";
  EXPECT_EQ(ring.pop().value(), 1);
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(ring.pop().value(), 2);
}

TEST(BoundedRingTest, CloseDrainsThenEnds) {
  stream::BoundedRing<int> ring(4);
  int a = 1, b = 2;
  ring.push(a);
  ring.push(b);
  ring.close();
  int c = 3;
  EXPECT_FALSE(ring.push(c)) << "push after close must fail";
  EXPECT_EQ(ring.pop().value(), 1) << "queued items drain after close";
  EXPECT_EQ(ring.pop().value(), 2);
  EXPECT_FALSE(ring.pop().has_value()) << "closed + empty ends the stream";
}

TEST(BoundedRingTest, CloseWakesBlockedConsumer) {
  stream::BoundedRing<int> ring(1);
  std::atomic<bool> ended{false};
  std::thread consumer([&] {
    EXPECT_FALSE(ring.pop().has_value());
    ended.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ring.close();
  consumer.join();
  EXPECT_TRUE(ended.load());
}

// --------------------------------------------------- driver backpressure

/// Format that counts parses; commit sleeps so the committer (driver
/// thread) becomes the bottleneck — exactly the "slow consumer" case the
/// batch pool must bound.
struct SlowCommitFormat {
  struct Parsed {
    std::size_t line = 0;
  };
  std::atomic<std::size_t>* parsed;
  std::size_t* committed;

  Parsed parse(std::string_view, std::size_t line_no) const {
    parsed->fetch_add(1);
    return {line_no};
  }
  void commit(Parsed&&, std::size_t) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
    ++*committed;
  }
};

struct CountingSink {
  std::size_t ok_count = 0;
  void consume(std::size_t) {}
  bool on_truncated_final_line(std::size_t, bool) { return true; }
  void ok() { ++ok_count; }
  void skip(std::size_t, const std::string& what) {
    FAIL() << "unexpected skip: " << what;
  }
};

TEST(StreamDriverTest, ReadAheadBoundedByBatchPool) {
  std::string text;
  constexpr std::size_t kLines = 3000;
  for (std::size_t i = 0; i < kLines; ++i) {
    text += "line-" + std::to_string(i) + "\n";
  }
  std::istringstream in(text);

  std::atomic<std::size_t> parsed{0};
  std::size_t committed = 0;
  SlowCommitFormat format{&parsed, &committed};
  CountingSink sink;

  stream::DriverStats stats;
  stream::StreamOptions opts;
  opts.n_threads = 4;
  opts.batch_lines = 16;  // force many batches
  opts.chunk_bytes = 256;
  opts.stats = &stats;
  stream::scan_stream(in, format, sink, " \t", opts);

  EXPECT_EQ(sink.ok_count, kLines);
  EXPECT_EQ(committed, kLines);
  EXPECT_EQ(parsed.load(), kLines);
  EXPECT_GE(stats.batches, kLines / 16);
  // The memory bound: however slow commit is, at most n_threads + 2
  // batches may leave the free pool at once.
  EXPECT_LE(stats.max_in_flight, static_cast<std::size_t>(opts.n_threads) + 2);
  EXPECT_GT(stats.max_in_flight, 1u) << "parallel path should overlap batches";
}

TEST(StreamDriverTest, SerialAndParallelCommitIdenticalSequences) {
  std::string text;
  for (std::size_t i = 0; i < 500; ++i) {
    text += std::to_string(i) + "\n";
    if (i % 7 == 0) text += "# comment\n";
  }

  struct RecordingFormat {
    struct Parsed {
      std::string text;
    };
    std::vector<std::string>* order;
    Parsed parse(std::string_view text, std::size_t) const {
      return {std::string(text)};
    }
    void commit(Parsed&& parsed, std::size_t line_no) {
      order->push_back(std::to_string(line_no) + ":" + parsed.text);
    }
  };

  auto run = [&text](int threads, std::size_t batch_lines) {
    std::istringstream in(text);
    std::vector<std::string> order;
    RecordingFormat format{&order};
    CountingSink sink;
    stream::StreamOptions opts;
    opts.n_threads = threads;
    opts.batch_lines = batch_lines;
    opts.chunk_bytes = 64;
    stream::scan_stream(in, format, sink, " \t", opts);
    return order;
  };

  const std::vector<std::string> serial = run(1, 2048);
  EXPECT_EQ(run(1, 3), serial);
  EXPECT_EQ(run(4, 3), serial);
  EXPECT_EQ(run(4, 64), serial);
  EXPECT_EQ(run(8, 1), serial);
}

// ------------------------------------------------- load equivalence

TEST(IoStreamTest, StreamedLoadBitIdenticalToMaterialized) {
  LoadReport base_report;
  Dataset base = load_materialized(ReadOptions::strict(), &base_report);
  const std::string want = dataset_fingerprint(base, base_report);
  ASSERT_FALSE(base.snapshot().certs().empty());

  for (int threads : {1, 4}) {
    for (std::size_t chunk : {std::size_t{16}, std::size_t{64 * 1024}}) {
      for (std::size_t batch : {std::size_t{3}, std::size_t{1024}}) {
        stream::StreamOptions opts;
        opts.n_threads = threads;
        opts.chunk_bytes = chunk;
        opts.batch_lines = batch;
        LoadReport report;
        Dataset dataset = load_streamed(opts, ReadOptions::strict(), &report);
        EXPECT_EQ(dataset_fingerprint(dataset, report), want)
            << "threads=" << threads << " chunk=" << chunk
            << " batch=" << batch;
      }
    }
  }
}

TEST(IoStreamTest, PermissiveStreamedLoadMatchesMaterialized) {
  // Damage two lines so the permissive accounting paths run too.
  std::string hosts(kHosts);
  hosts += "not-an-ip\tc-google\n1.0.0.12\tc-missing\n";
  auto load = [&hosts](const stream::StreamOptions* opts, LoadReport* report) {
    std::istringstream rel(kRelationships), org(kOrganizations),
        pfx(kPrefix2As), certs(kCertificates), hosts_in(hosts);
    ReadOptions options = ReadOptions::lenient(0.5);
    return opts == nullptr
               ? load_dataset(rel, org, pfx, certs, hosts_in,
                              net::YearMonth(2019, 10), options, report)
               : load_dataset_stream(rel, org, pfx, certs, hosts_in,
                                     net::YearMonth(2019, 10), *opts, options,
                                     report);
  };

  LoadReport base_report;
  Dataset base = load(nullptr, &base_report);
  EXPECT_EQ(base_report.lines_skipped(), 2u);
  const std::string want = dataset_fingerprint(base, base_report);

  for (int threads : {1, 4}) {
    stream::StreamOptions opts;
    opts.n_threads = threads;
    opts.batch_lines = 2;
    opts.chunk_bytes = 32;
    LoadReport report;
    Dataset dataset = load(&opts, &report);
    EXPECT_EQ(dataset_fingerprint(dataset, report), want)
        << "threads=" << threads;
  }
}

// ------------------------------------------- CRLF / final-newline policy

TEST(IoStreamTest, CrlfCorpusLoadsIdenticallyToLf) {
  auto crlfify = [](const char* text) {
    std::string out;
    for (const char* p = text; *p != '\0'; ++p) {
      if (*p == '\n') out += '\r';
      out += *p;
    }
    return out;
  };

  std::istringstream rel(crlfify(kRelationships)),
      org(crlfify(kOrganizations)), pfx(crlfify(kPrefix2As)),
      certs(crlfify(kCertificates)), hosts(crlfify(kHosts));
  LoadReport report;
  Dataset dataset = load_dataset(rel, org, pfx, certs, hosts,
                                 net::YearMonth(2019, 10),
                                 ReadOptions::strict(), &report);
  std::istringstream headers(crlfify(kHeaders));
  dataset.add_headers(headers, ReadOptions::strict(), &report);

  LoadReport base_report;
  Dataset base = load_materialized(ReadOptions::strict(), &base_report);
  EXPECT_EQ(dataset_fingerprint(dataset, report),
            dataset_fingerprint(base, base_report));
}

TEST(IoStreamTest, MissingFinalNewlineAcceptedAndCounted) {
  std::string rel_text(kRelationships);
  ASSERT_EQ(rel_text.back(), '\n');
  rel_text.pop_back();  // drop the final newline

  std::istringstream in(rel_text);
  LoadReport report;
  RelationshipData data = load_as_relationships(in, ReadOptions::strict(),
                                                &report);
  EXPECT_EQ(data.graph.as_count(), 6u) << "truncated record still parses";
  EXPECT_EQ(report.files_missing_final_newline(), 1u);
  ASSERT_FALSE(report.files.empty());
  EXPECT_TRUE(report.files[0].missing_final_newline);
  EXPECT_EQ(metrics_json(report).find("files_missing_final_newline") ==
                std::string::npos,
            false);
  EXPECT_NE(report.summary().find("missing final newline"), std::string::npos);
}

TEST(IoStreamTest, CleanCorpusExportsNoMissingNewlineMetric) {
  std::istringstream in(kRelationships);
  LoadReport report;
  (void)load_as_relationships(in, ReadOptions::strict(), &report);
  EXPECT_EQ(report.files_missing_final_newline(), 0u);
  // The counter must stay absent so clean corpora keep byte-identical
  // metric exports (and summaries) to pre-policy builds.
  EXPECT_EQ(metrics_json(report).find("files_missing_final_newline"),
            std::string::npos);
  EXPECT_EQ(report.summary().find("missing final newline"),
            std::string::npos);
}

TEST(IoStreamTest, DropDataPolicySkipsUnterminatedFinalRecord) {
  std::string rel_text("100|200|-1\n300|400|-1");  // no final '\n'

  ReadOptions lenient = ReadOptions::lenient(0.9);
  lenient.final_newline = FinalNewlinePolicy::kDropData;
  std::istringstream in(rel_text);
  LoadReport report;
  RelationshipData data = load_as_relationships(in, lenient, &report);
  EXPECT_EQ(data.graph.as_count(), 2u) << "only the terminated record loads";
  EXPECT_EQ(report.lines_skipped(), 1u);
  ASSERT_FALSE(report.files[0].samples.empty());
  EXPECT_NE(report.files[0].samples[0].what.find("truncated final line"),
            std::string::npos);

  ReadOptions strict = ReadOptions::strict();
  strict.final_newline = FinalNewlinePolicy::kDropData;
  std::istringstream again(rel_text);
  try {
    (void)load_as_relationships(again, strict);
    FAIL() << "strict kDropData must throw on an unterminated final record";
  } catch (const LoadError& e) {
    EXPECT_NE(std::string(e.what()).find("truncated final line"),
              std::string::npos);
  }
}

TEST(IoStreamTest, UnterminatedFinalCommentOnlyFlagsTheFile) {
  std::string rel_text("100|200|-1\n# trailing comment");
  ReadOptions strict = ReadOptions::strict();
  strict.final_newline = FinalNewlinePolicy::kDropData;
  std::istringstream in(rel_text);
  LoadReport report;
  RelationshipData data = load_as_relationships(in, strict, &report);
  EXPECT_EQ(data.graph.as_count(), 2u);
  EXPECT_EQ(report.lines_skipped(), 0u) << "comments are not data to drop";
  EXPECT_TRUE(report.files[0].missing_final_newline);
}

// --------------------------------------------------- early budget abort

TEST(IoStreamTest, ErrorBudgetTripsEarlyOnProvablyBadFile) {
  // 10k garbage data lines: the final fraction would be 1.0, so a 5%
  // budget is provably unmeetable long before the end of the file.
  constexpr std::size_t kLines = 10000;
  std::string text;
  for (std::size_t i = 0; i < kLines; ++i) text += "zz\n";

  std::istringstream in(text);
  LoadReport report;
  std::string error;
  try {
    (void)load_as_relationships(in, ReadOptions::lenient(0.05), &report);
    FAIL() << "budget must trip";
  } catch (const LoadError& e) {
    error = e.what();
  }
  ASSERT_FALSE(report.files.empty());
  const FileReport& file = report.files[0];
  EXPECT_GT(file.lines_skipped, 0u);
  EXPECT_LT(file.lines_skipped, kLines / 2)
      << "abort must come well before the end of the input";
  EXPECT_NE(error.find("error budget exceeded in relationships"),
            std::string::npos);
}

TEST(IoStreamTest, EarlyAbortMessageIdenticalAtAnyThreadCount) {
  // A mixed file: enough garbage to blow a small budget part-way in.
  // Appended piecewise: `const char* + std::to_string(...)` trips a GCC
  // 12 -Wrestrict false positive at -O2 (see io/corruption.cpp).
  std::string certs_text;
  for (std::size_t i = 0; i < 400; ++i) {
    if (i % 3 == 0) {
      certs_text += "garbage line ";
      certs_text += std::to_string(i);
      certs_text += '\n';
    } else {
      certs_text += 'c';
      certs_text += std::to_string(i);
      certs_text += "\tOrg\t2019-01-01\t2022-01-01\ttrusted\ta.example\n";
    }
  }

  auto run = [&certs_text](const stream::StreamOptions& opts) {
    std::istringstream rel(kRelationships), org(kOrganizations),
        pfx(kPrefix2As), certs(certs_text), hosts("");
    LoadReport report;
    try {
      (void)load_dataset_stream(rel, org, pfx, certs, hosts,
                                net::YearMonth(2019, 10), opts,
                                ReadOptions::lenient(0.05), &report);
      return std::string("no error");
    } catch (const LoadError& e) {
      const FileReport* file = report.find("certificates");
      return std::string(e.what()) + " | skipped=" +
             std::to_string(file != nullptr ? file->lines_skipped : 0);
    }
  };

  stream::StreamOptions serial;
  const std::string want = run(serial);
  EXPECT_NE(want.find("error budget exceeded in certificates"),
            std::string::npos);

  for (int threads : {2, 4, 8}) {
    for (std::size_t batch : {std::size_t{1}, std::size_t{7},
                              std::size_t{512}}) {
      stream::StreamOptions opts;
      opts.n_threads = threads;
      opts.batch_lines = batch;
      opts.chunk_bytes = 128;
      EXPECT_EQ(run(opts), want) << "threads=" << threads
                                 << " batch=" << batch;
    }
  }
}

TEST(IoStreamTest, ZeroBudgetTripsOnFirstErrorEvenUnseekable) {
  // A non-seekable stream loses the lookahead bound, but a zero budget
  // needs none: the first skip is already fatal.
  class NoSeekBuf : public std::stringbuf {
   public:
    explicit NoSeekBuf(const std::string& text) : std::stringbuf(text) {}

   protected:
    std::streampos seekoff(std::streamoff, std::ios_base::seekdir,
                           std::ios_base::openmode) override {
      return std::streampos(std::streamoff(-1));
    }
  };

  NoSeekBuf buf("100|200|-1\ngarbage\n100|300|-1\n");
  std::istream in(&buf);
  LoadReport report;
  EXPECT_THROW(
      (void)load_as_relationships(in, ReadOptions::lenient(0.0), &report),
      LoadError);
  ASSERT_FALSE(report.files.empty());
  EXPECT_EQ(report.files[0].lines_ok, 1u) << "aborted at the bad line";
}

// ------------------------------------------- record-indexed corruption

TEST(CorruptionStreamTest, RecordIndexedDamageMatchesWholeBufferDamage) {
  std::string text;
  for (std::size_t i = 0; i < 200; ++i) {
    if (i % 11 == 0) text += "# comment " + std::to_string(i) + "\n";
    text += "1.0." + std::to_string(i) + ".0\t24\t" + std::to_string(i) +
            "\n";
  }

  CorruptionConfig config;
  config.intensity = 0.3;
  CorruptionInjector injector(config);
  CorruptionSummary summary;
  const std::string whole =
      injector.corrupt(text, InputKind::kPrefix2As, &summary);
  EXPECT_GT(summary.corrupted_lines, 0u);

  // Re-apply line by line through corrupt_record, tracking the running
  // data-record index exactly as a streaming consumer would — in several
  // different "chunkings" (which must not matter, since each decision
  // depends only on the record index).
  for (std::size_t chunk_lines : {std::size_t{1}, std::size_t{7},
                                  std::size_t{1000}}) {
    std::string rebuilt;
    std::size_t record = 0;
    std::size_t start = 0;
    std::size_t lines_in_chunk = 0;
    while (start < text.size()) {
      std::size_t end = text.find('\n', start);
      std::string_view line(text.data() + start, end - start);
      bool is_data = !line.empty() && line[0] != '#';
      if (is_data) {
        if (auto damaged =
                injector.corrupt_record(line, InputKind::kPrefix2As, record)) {
          rebuilt += *damaged;
        } else {
          rebuilt += line;
        }
        ++record;
      } else {
        rebuilt += line;
      }
      rebuilt += '\n';
      start = end + 1;
      if (++lines_in_chunk == chunk_lines) lines_in_chunk = 0;  // chunk seam
    }
    EXPECT_EQ(rebuilt, whole) << "chunk_lines=" << chunk_lines;
  }
}

TEST(CorruptionStreamTest, RecordDecisionIndependentOfNeighbors) {
  CorruptionInjector injector({.seed = 7, .intensity = 0.5});
  const std::string_view line = "1.2.3.0\t24\t65000";
  auto first = injector.corrupt_record(line, InputKind::kPrefix2As, 42);
  // The same (line, input, index) must decide identically regardless of
  // what was processed before — call again after unrelated work.
  (void)injector.corrupt_record("9.9.9.0\t24\t1", InputKind::kPrefix2As, 0);
  auto second = injector.corrupt_record(line, InputKind::kPrefix2As, 42);
  EXPECT_EQ(first.has_value(), second.has_value());
  if (first.has_value()) {
    EXPECT_EQ(*first, *second);
  }
}

// ------------------------------------------------------- arena/interner

TEST(ArenaTest, StoredViewsStayValidAcrossGrowth) {
  stream::Arena arena(64);  // tiny chunks force many allocations
  std::vector<std::string_view> views;
  for (std::size_t i = 0; i < 1000; ++i) {
    views.push_back(arena.store("value-" + std::to_string(i)));
  }
  for (std::size_t i = 0; i < views.size(); ++i) {
    EXPECT_EQ(views[i], "value-" + std::to_string(i));
  }
  EXPECT_GE(arena.bytes_allocated(), arena.bytes_stored());
}

TEST(StringInternerTest, DenseFirstSeenIds) {
  stream::StringInterner interner;
  EXPECT_EQ(interner.intern("a"), 0u);
  EXPECT_EQ(interner.intern("b"), 1u);
  EXPECT_EQ(interner.intern("a"), 0u) << "re-interning returns the same id";
  EXPECT_EQ(interner.size(), 2u);
  EXPECT_EQ(interner.text(1), "b");
  EXPECT_FALSE(interner.find("missing").has_value());
  ASSERT_TRUE(interner.find("b").has_value());
  EXPECT_EQ(*interner.find("b"), 1u);
}

}  // namespace
}  // namespace offnet::io
