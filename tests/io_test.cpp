#include <gtest/gtest.h>

#include <cerrno>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "core/fault.h"
#include "core/pipeline.h"
#include "io/atomic_file.h"
#include "io/loaders.h"

namespace offnet::io {
namespace {

constexpr const char* kRelationships = R"(# CAIDA serial-1
# provider|customer|-1  peer|peer|0
100|200|-1
100|300|-1
200|400|-1
200|500|-1
300|500|-1
100|101|0
101|600|-1
)";

constexpr const char* kOrganizations = R"(# org_id|name then asn|org_id
ORG-G|Google LLC
ORG-T|Tier One Transit
ORG-I|Island ISP
100|ORG-T
101|ORG-T
200|ORG-I
300|ORG-I
400|ORG-I
500|ORG-I
600|ORG-G
)";

constexpr const char* kPrefix2As =
    "1.0.0.0\t20\t200\n"
    "1.0.16.0\t20\t400\n"
    "1.0.32.0\t20\t500\n"
    "1.0.48.0\t20\t600\n"
    "1.0.64.0\t20\t200_300\n";

constexpr const char* kCertificates =
    "c-google\tGoogle LLC\t2019-01-01\t2022-01-01\ttrusted\t"
    "*.google.com,*.googlevideo.com\n"
    "c-mimic\tGoogle LLC\t2019-01-01\t2022-01-01\ttrusted\twww.mimic.example\n"
    "c-self\tSelf Org\t2019-01-01\t2022-01-01\tself-signed\tself.example\n"
    "c-expired\tOld Org\t2012-01-01\t2014-01-01\ttrusted\told.example\n"
    "c-other\tIsland ISP\t2019-01-01\t2022-01-01\ttrusted\twww.island.example\n";

constexpr const char* kHosts =
    "1.0.48.10\tc-google\n"   // on-net (AS600 = Google LLC)
    "1.0.0.10\tc-google\n"    // off-net candidate in AS200
    "1.0.16.10\tc-mimic\n"    // mimic: filtered by containment rule
    "1.0.32.10\tc-self\n"     // invalid
    "1.0.32.11\tc-expired\n"  // invalid
    "1.0.64.10\tc-other\n";   // unrelated

constexpr const char* kHeaders =
    "1.0.48.10\t443\tServer: gws|Content-Type: text/html\n"
    "1.0.0.10\t443\tServer: gws|Cache-Control: max-age=60\n"
    "1.0.16.10\t443\tServer: nginx\n";

Dataset load_all() {
  std::istringstream rel(kRelationships);
  std::istringstream org(kOrganizations);
  std::istringstream pfx(kPrefix2As);
  std::istringstream certs(kCertificates);
  std::istringstream hosts(kHosts);
  Dataset dataset = load_dataset(rel, org, pfx, certs, hosts,
                                 net::YearMonth(2019, 10));
  std::istringstream headers(kHeaders);
  dataset.add_headers(headers);
  return dataset;
}

TEST(IoTest, LoadsRelationships) {
  std::istringstream in(kRelationships);
  RelationshipData data = load_as_relationships(in);
  EXPECT_EQ(data.graph.as_count(), 7u);
  auto cones = data.graph.customer_cone_sizes();
  // AS100's cone: itself + 200,300,400,500 (peer 101 excluded).
  topo::AsId id_100 = 0;  // first interned
  EXPECT_EQ(data.asns[id_100], 100u);
  EXPECT_EQ(cones[id_100], 5u);
}

TEST(IoTest, RejectsMalformedRelationships) {
  std::istringstream bad1("100|200|7\n");
  EXPECT_THROW(load_as_relationships(bad1), LoadError);
  std::istringstream bad2("100|100|-1\n");
  EXPECT_THROW(load_as_relationships(bad2), LoadError);
  std::istringstream bad3("abc|200|-1\n");
  EXPECT_THROW(load_as_relationships(bad3), LoadError);
  std::istringstream bad4("100|200\n");
  EXPECT_THROW(load_as_relationships(bad4), LoadError);
}

TEST(IoTest, LoadsTopologyWithOrgs) {
  std::istringstream rel(kRelationships);
  std::istringstream org(kOrganizations);
  topo::Topology topology = load_topology(rel, org);
  auto google = topology.orgs().find_exact("Google LLC");
  ASSERT_TRUE(google.has_value());
  auto google_ases = topology.orgs().ases_of(*google);
  ASSERT_EQ(google_ases.size(), 1u);
  EXPECT_EQ(topology.as(google_ases[0]).asn, 600u);
  EXPECT_TRUE(topology.find_asn(500).has_value());
}

TEST(IoTest, RejectsUnknownOrgAssignment) {
  std::istringstream rel("100|200|-1\n");
  std::istringstream org("100|ORG-MISSING\n");
  EXPECT_THROW(load_topology(rel, org), LoadError);
}

TEST(IoTest, LoadsPrefix2AsWithMoas) {
  std::istringstream in(kPrefix2As);
  bgp::Ip2AsMap map = load_prefix2as(in);
  EXPECT_EQ(map.prefix_count(), 5u);
  EXPECT_EQ(map.primary(*net::IPv4::parse("1.0.16.5")), 400u);
  auto moas = map.lookup(*net::IPv4::parse("1.0.64.9"));
  ASSERT_EQ(moas.size(), 2u);
  EXPECT_EQ(map.lookup(*net::IPv4::parse("9.9.9.9")).size(), 0u);
}

TEST(IoTest, RejectsMalformedPrefix2As) {
  std::istringstream bad1("1.0.0.0\t40\t100\n");
  EXPECT_THROW(load_prefix2as(bad1), LoadError);
  std::istringstream bad2("1.0.0\t20\t100\n");
  EXPECT_THROW(load_prefix2as(bad2), LoadError);
  std::istringstream bad3("1.0.0.0 20 100\n");
  EXPECT_THROW(load_prefix2as(bad3), LoadError);
}

TEST(IoTest, RejectsPrefixLengthOver32) {
  std::istringstream bad("1.0.0.0\t33\t100\n");
  try {
    load_prefix2as(bad);
    FAIL() << "expected LoadError";
  } catch (const LoadError& e) {
    EXPECT_NE(std::string(e.what()).find("prefix length out of range"),
              std::string::npos);
  }
}

TEST(IoTest, Prefix2AsToleratesTrailingWhitespaceAndBlankLines) {
  std::istringstream in(
      "1.0.0.0\t20\t200   \n"
      "\n"
      "   \t \n"
      "1.0.16.0\t20\t400\t\n"
      "1.0.32.0\t20\t500\r\n");
  bgp::Ip2AsMap map = load_prefix2as(in);
  EXPECT_EQ(map.prefix_count(), 3u);
  EXPECT_EQ(map.primary(*net::IPv4::parse("1.0.0.5")), 200u);
  EXPECT_EQ(map.primary(*net::IPv4::parse("1.0.32.5")), 500u);
}

TEST(IoTest, Prefix2AsMoasSurvivesTrailingWhitespace) {
  std::istringstream in("1.0.64.0\t20\t200_300_77 \r\n");
  bgp::Ip2AsMap map = load_prefix2as(in);
  auto moas = map.lookup(*net::IPv4::parse("1.0.64.9"));
  ASSERT_EQ(moas.size(), 3u);
  EXPECT_EQ(moas[0], 200u);
  EXPECT_EQ(moas[2], 77u);
}

TEST(IoTest, StrictErrorsCarryExactLineNumbers) {
  // Line 1 comment, line 2 ok, line 3 blank, line 4 malformed.
  std::istringstream in(
      "# pfx2as\n"
      "1.0.0.0\t20\t200\n"
      "\n"
      "1.0.16.0\t99\t400\n");
  try {
    load_prefix2as(in);
    FAIL() << "expected LoadError";
  } catch (const LoadError& e) {
    EXPECT_NE(std::string(e.what()).find("at line 4"), std::string::npos)
        << e.what();
  }
}

TEST(IoTest, ErrorFractionEdgeCases) {
  // Zero lines: no division by zero, and "no data" reads as "no errors".
  FileReport empty{"hosts", 0, 0, {}};
  EXPECT_DOUBLE_EQ(empty.error_fraction(), 0.0);
  // All lines skipped.
  FileReport hopeless{"hosts", 0, 7, {}};
  EXPECT_DOUBLE_EQ(hopeless.error_fraction(), 1.0);
  FileReport half{"hosts", 5, 5, {}};
  EXPECT_DOUBLE_EQ(half.error_fraction(), 0.5);
}

TEST(IoTest, SummaryEdgeCases) {
  // An empty report (zero files, zero lines) must not crash or lie.
  LoadReport empty;
  EXPECT_EQ(empty.summary(), "read 0 lines, none skipped");
  EXPECT_TRUE(empty.clean());

  // All files fully skipped: every kind is named with its count.
  LoadReport all_skipped;
  all_skipped.files.push_back(FileReport{"certificates", 0, 3, {}});
  all_skipped.files.push_back(FileReport{"hosts", 0, 2, {}});
  EXPECT_EQ(all_skipped.summary(),
            "skipped 5 of 5 lines (certificates: 3, hosts: 2)");
  EXPECT_FALSE(all_skipped.clean());

  // Clean files stay out of the skip breakdown.
  LoadReport mixed;
  mixed.files.push_back(FileReport{"relationships", 10, 0, {}});
  mixed.files.push_back(FileReport{"hosts", 4, 1, {}});
  EXPECT_EQ(mixed.summary(), "skipped 1 of 15 lines (hosts: 1)");
}

TEST(IoTest, PermissiveSkipsMalformedLinesWithinBudget) {
  std::istringstream in(
      "1.0.0.0\t20\t200\n"
      "1.0.16.0\t99\t400\n"   // length out of range: skipped
      "garbage line\n"        // malformed: skipped
      "1.0.32.0\t20\t500\n");
  LoadReport report;
  bgp::Ip2AsMap map =
      load_prefix2as(in, ReadOptions::lenient(/*budget=*/0.6), &report);
  EXPECT_EQ(map.prefix_count(), 2u);
  const FileReport* file = report.find("prefix2as");
  ASSERT_NE(file, nullptr);
  EXPECT_EQ(file->lines_ok, 2u);
  EXPECT_EQ(file->lines_skipped, 2u);
  ASSERT_GE(file->samples.size(), 1u);
  EXPECT_EQ(file->samples[0].line, 2u);
  EXPECT_FALSE(report.clean());
}

TEST(IoTest, PermissiveEnforcesErrorBudget) {
  std::istringstream in(
      "garbage\n"
      "more garbage\n"
      "1.0.0.0\t20\t200\n");
  LoadReport report;
  try {
    load_prefix2as(in, ReadOptions::lenient(/*budget=*/0.5), &report);
    FAIL() << "expected LoadError";
  } catch (const LoadError& e) {
    EXPECT_NE(std::string(e.what()).find("error budget exceeded"),
              std::string::npos)
        << e.what();
  }
  // The report still holds the file's accounting for diagnostics.
  const FileReport* file = report.find("prefix2as");
  ASSERT_NE(file, nullptr);
  EXPECT_EQ(file->lines_skipped, 2u);
}

TEST(IoTest, PermissiveDatasetLoadSkipsBrokenCertAndDependentHost) {
  std::istringstream rel("100|200|-1\n");
  std::istringstream org("ORG-X|X\n100|ORG-X\n");
  std::istringstream pfx("1.0.0.0\t20\t100\n");
  std::istringstream certs(
      "c1\tOrg\t2019-01-01\t2020-01-01\ttrusted\ta.example\n"
      "c2\tOrg\t2019-01-01\t2018-01-01\ttrusted\tb.example\n");  // reversed
  std::istringstream hosts(
      "1.0.0.1\tc1\n"
      "1.0.0.2\tc2\n");  // references the skipped certificate
  LoadReport report;
  Dataset dataset =
      load_dataset(rel, org, pfx, certs, hosts, net::YearMonth(2019, 10),
                   ReadOptions::lenient(/*budget=*/0.9), &report);
  EXPECT_EQ(dataset.snapshot().certs().size(), 1u);
  EXPECT_EQ(report.lines_skipped(), 2u);
  EXPECT_EQ(report.find("certificates")->lines_skipped, 1u);
  EXPECT_EQ(report.find("hosts")->lines_skipped, 1u);
  // The dataset carries its own copy of the accounting.
  EXPECT_EQ(dataset.report().lines_skipped(), 2u);
}

TEST(IoTest, PermissiveTopologySkipsUnknownOrgAssignment) {
  std::istringstream rel("100|200|-1\n");
  std::istringstream org(
      "ORG-X|X\n"
      "100|ORG-X\n"
      "200|ORG-MISSING\n");
  LoadReport report;
  topo::Topology topology =
      load_topology(rel, org, ReadOptions::lenient(0.9), &report);
  EXPECT_TRUE(topology.orgs().find_exact("X").has_value());
  EXPECT_EQ(report.find("organizations")->lines_skipped, 1u);
}

TEST(IoTest, RejectsBadCertificates) {
  auto try_load = [](const char* certs_text) {
    std::istringstream rel("100|200|-1\n");
    std::istringstream org("ORG-X|X\n100|ORG-X\n");
    std::istringstream pfx("1.0.0.0\t20\t100\n");
    std::istringstream certs(certs_text);
    std::istringstream hosts("");
    return load_dataset(rel, org, pfx, certs, hosts,
                        net::YearMonth(2019, 10));
  };
  EXPECT_THROW(
      try_load("c1\tOrg\t2019-01-01\t2018-01-01\ttrusted\ta.example\n"),
      LoadError);
  EXPECT_THROW(
      try_load("c1\tOrg\t2019-01-01\t2020-01-01\tbogus\ta.example\n"),
      LoadError);
  EXPECT_THROW(
      try_load("c1\tOrg\t2019-13-01\t2020-01-01\ttrusted\ta.example\n"),
      LoadError);
  EXPECT_THROW(try_load("c1\tOrg\t2019-01-01\t2020-01-01\ttrusted\ta\n"
                        "c1\tOrg\t2019-01-01\t2020-01-01\ttrusted\tb\n"),
               LoadError);
}

TEST(IoTest, RejectsHostWithUnknownCert) {
  std::istringstream rel("100|200|-1\n");
  std::istringstream org("ORG-X|X\n100|ORG-X\n");
  std::istringstream pfx("1.0.0.0\t20\t100\n");
  std::istringstream certs("");
  std::istringstream hosts("1.0.0.1\tmissing\n");
  EXPECT_THROW(load_dataset(rel, org, pfx, certs, hosts,
                            net::YearMonth(2019, 10)),
               LoadError);
}

TEST(IoTest, EndToEndPipelineOnLoadedData) {
  Dataset dataset = load_all();
  EXPECT_EQ(dataset.snapshot().certs().size(), 6u);
  EXPECT_TRUE(dataset.snapshot().has_https_headers());

  core::OffnetPipeline pipeline(dataset.topology(), dataset.ip2as(),
                                dataset.certs(), dataset.roots());
  auto result = pipeline.run(dataset.snapshot());

  const core::HgFootprint* google = result.find("Google");
  ASSERT_NE(google, nullptr);
  // One on-net IP learned the fingerprint; the AS200 copy is the only
  // candidate (the mimic's SAN is not in the on-net set); headers (gws)
  // confirm it.
  EXPECT_EQ(google->onnet_ips, 1u);
  EXPECT_EQ(google->candidate_ips, 1u);
  ASSERT_EQ(google->candidate_ases.size(), 1u);
  EXPECT_EQ(dataset.topology().as(google->candidate_ases[0]).asn, 200u);
  EXPECT_EQ(google->confirmed_or_ases.size(), 1u);
  // Invalid certificates counted.
  EXPECT_EQ(result.stats.invalid_cert_ips, 2u);
}

std::string atomic_path(const std::string& name) {
  const std::string path =
      (std::filesystem::path(::testing::TempDir()) / name).string();
  // TempDir is shared across test runs: start from a clean slate.
  std::filesystem::remove(path);
  std::filesystem::remove(path + ".tmp");
  return path;
}

std::string file_contents(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(AtomicFileTest, NothingVisibleUntilCommit) {
  const std::string path = atomic_path("visible.txt");
  AtomicFile file(path);
  file.stream() << "payload\n";
  EXPECT_FALSE(std::filesystem::exists(path));
  EXPECT_TRUE(std::filesystem::exists(file.temp_path()));
  file.commit();
  EXPECT_TRUE(file.committed());
  EXPECT_EQ(file_contents(path), "payload\n");
  EXPECT_FALSE(std::filesystem::exists(file.temp_path()));
}

TEST(AtomicFileTest, AbandonedWriteLeavesNoTrace) {
  const std::string path = atomic_path("abandoned.txt");
  {
    AtomicFile file(path);
    file.stream() << "half-written";
    // destroyed without commit(): the crash / early-exit path
  }
  EXPECT_FALSE(std::filesystem::exists(path));
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
}

TEST(AtomicFileTest, PreviousArtifactSurvivesUntilCommit) {
  const std::string path = atomic_path("replace.txt");
  AtomicFile::write(path, "old contents");
  {
    AtomicFile file(path);
    file.stream() << "new contents";
    EXPECT_EQ(file_contents(path), "old contents");
  }  // abandoned: the old artifact must be untouched
  EXPECT_EQ(file_contents(path), "old contents");
  AtomicFile::write(path, "new contents");
  EXPECT_EQ(file_contents(path), "new contents");
}

TEST(AtomicFileTest, LeftoverTempFromACrashIsTruncated) {
  const std::string path = atomic_path("leftover.txt");
  std::ofstream(path + ".tmp", std::ios::binary) << "torn garbage bytes";
  AtomicFile file(path);
  file.stream() << "clean";
  file.commit();
  EXPECT_EQ(file_contents(path), "clean");
}

TEST(AtomicFileTest, UnwritableDirectoryThrowsOnOpen) {
  EXPECT_THROW(AtomicFile("/nonexistent-dir-8472/artifact.txt"),
               std::runtime_error);
  EXPECT_THROW(AtomicFile::write("/nonexistent-dir-8472/artifact.txt", "x"),
               std::runtime_error);
}

// Every commit failure path must unlink the temp *before* the exception
// propagates — while the AtomicFile object is still alive — so a caller
// holding several staged files (scan::export_dataset_to_dir) never
// leaves an orphan even if it aborts mid-cleanup.
TEST(AtomicFileTest, FailedCommitUnlinksTempWhileObjectIsAlive) {
  const std::string path = atomic_path("hook_fail.txt");
  AtomicFile file(path);
  file.stream() << "doomed";
  file.set_commit_hook([] { throw std::runtime_error("injected"); });
  EXPECT_THROW(file.commit(), std::runtime_error);
  // The object is still in scope; the temp must already be gone.
  EXPECT_FALSE(std::filesystem::exists(file.temp_path()));
  EXPECT_FALSE(std::filesystem::exists(path));
  EXPECT_FALSE(file.committed());
}

// Same contract for an injected errno at the syscall seams: ENOSPC on
// the write and EIO on the fsync surface as IoError with no temp left,
// and EINTR is retried to a successful publish.
TEST(AtomicFileTest, InjectedErrnoFailsCleanAndEintrRetries) {
  offnet::core::FaultInjector faults;
  // Occurrences count per stage: commit 1 dies at its write, so commit
  // 2's fsync is that stage's first crossing; commit 3's write is the
  // write stage's third.
  faults.fail_with_errno(offnet::core::fault_stage::kAtomicWrite, 1, ENOSPC);
  faults.fail_with_errno(offnet::core::fault_stage::kAtomicFsync, 1, EIO);
  faults.fail_with_errno(offnet::core::fault_stage::kAtomicWrite, 3, EINTR);
  offnet::core::ScopedSysFaultInjector seams(faults);

  const std::string enospc = atomic_path("enospc.txt");
  try {
    AtomicFile file(enospc);  // crossing 1: ENOSPC on the write
    file.stream() << "x";
    file.commit();
    FAIL() << "commit survived injected ENOSPC";
  } catch (const IoError& e) {
    EXPECT_NE(std::string(e.what()).find("No space left"),
              std::string::npos);
  }
  EXPECT_FALSE(std::filesystem::exists(enospc));
  EXPECT_FALSE(std::filesystem::exists(enospc + ".tmp"));

  const std::string eio = atomic_path("eio.txt");
  EXPECT_THROW(AtomicFile::write(eio, "x"), IoError);  // EIO on fsync
  EXPECT_FALSE(std::filesystem::exists(eio));
  EXPECT_FALSE(std::filesystem::exists(eio + ".tmp"));

  const std::string retried = atomic_path("eintr.txt");
  AtomicFile::write(retried, "intact\n");  // crossing 3: EINTR, retried
  EXPECT_EQ(file_contents(retried), "intact\n");
  EXPECT_FALSE(std::filesystem::exists(retried + ".tmp"));
}

TEST(AtomicFileTest, CommitHookRunsBeforeRename) {
  const std::string path = atomic_path("hooked.txt");
  AtomicFile::write(path, "previous");
  try {
    AtomicFile file(path);
    file.stream() << "next";
    file.set_commit_hook([] { throw std::runtime_error("injected crash"); });
    file.commit();
    FAIL() << "commit() should have propagated the hook's exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "injected crash");
  }
  // The crash hit between flush and rename: previous artifact intact.
  EXPECT_EQ(file_contents(path), "previous");
}

TEST(AtomicFileTest, CommitTwiceIsAnError) {
  const std::string path = atomic_path("twice.txt");
  AtomicFile file(path);
  file.stream() << "once";
  file.commit();
  EXPECT_THROW(file.commit(), std::logic_error);
}

}  // namespace
}  // namespace offnet::io
