#include <gtest/gtest.h>

#include "net/ipv6.h"
#include "scan/world.h"
#include "test_world.h"

namespace offnet::net {
namespace {

struct V6ParseCase {
  const char* text;
  bool ok;
  const char* canonical;  // expected to_string round trip
};

class Ipv6ParseTest : public ::testing::TestWithParam<V6ParseCase> {};

TEST_P(Ipv6ParseTest, Parse) {
  const auto& c = GetParam();
  auto parsed = IPv6::parse(c.text);
  ASSERT_EQ(parsed.has_value(), c.ok) << c.text;
  if (c.ok) {
    EXPECT_EQ(parsed->to_string(), c.canonical) << c.text;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, Ipv6ParseTest,
    ::testing::Values(
        V6ParseCase{"::", true, "::"},
        V6ParseCase{"::1", true, "::1"},
        V6ParseCase{"2001:db8::1", true, "2001:db8::1"},
        V6ParseCase{"2001:0db8:0000:0000:0000:0000:0000:0001", true,
                    "2001:db8::1"},
        V6ParseCase{"fe80::", true, "fe80::"},
        V6ParseCase{"2001:db8:1:2:3:4:5:6", true, "2001:db8:1:2:3:4:5:6"},
        V6ParseCase{"::ffff:192.0.2.1", true, "::ffff:c000:201"},
        V6ParseCase{"2001:db8::0:0:1", true, "2001:db8::1"},
        V6ParseCase{"1:2:3:4:5:6:7:8:9", false, ""},
        V6ParseCase{"2001:db8:::1", false, ""},
        V6ParseCase{"2001::db8::1", false, ""},
        V6ParseCase{"12345::", false, ""},
        V6ParseCase{"gggg::", false, ""},
        V6ParseCase{"1:2:3:4:5:6:7", false, ""}));

TEST(Ipv6Test, GroupsAndBits) {
  auto ip = *IPv6::parse("2001:db8::1");
  EXPECT_EQ(ip.group(0), 0x2001);
  EXPECT_EQ(ip.group(1), 0x0db8);
  EXPECT_EQ(ip.group(7), 0x0001);
  EXPECT_TRUE(ip.bit(2));    // 0x2001 = 0010 0000 ...
  EXPECT_FALSE(ip.bit(0));
  EXPECT_TRUE(ip.bit(127));  // final ...0001
}

TEST(Ipv6Test, Ordering) {
  EXPECT_LT(*IPv6::parse("::1"), *IPv6::parse("::2"));
  EXPECT_LT(*IPv6::parse("::ffff"), *IPv6::parse("1::"));
  EXPECT_EQ(*IPv6::parse("2001:db8::"), *IPv6::parse("2001:0DB8::"));
}

TEST(Prefix6Test, MaskingAndContains) {
  auto p = *Prefix6::parse("2001:db8:abcd::/48");
  EXPECT_EQ(p.to_string(), "2001:db8:abcd::/48");
  EXPECT_TRUE(p.contains(*IPv6::parse("2001:db8:abcd:1::5")));
  EXPECT_FALSE(p.contains(*IPv6::parse("2001:db8:abce::5")));
  // Base is masked.
  Prefix6 masked(*IPv6::parse("2001:db8:abcd:ffff::1"), 48);
  EXPECT_EQ(masked, p);
  // Lengths beyond 64 bits.
  auto deep = *Prefix6::parse("2001:db8::ff00:0/120");
  EXPECT_TRUE(deep.contains(*IPv6::parse("2001:db8::ff00:7f")));
  EXPECT_FALSE(deep.contains(*IPv6::parse("2001:db8::ff01:0")));
  EXPECT_FALSE(Prefix6::parse("2001:db8::/129").has_value());
}

TEST(Ipv6TableTest, LongestMatch) {
  Ipv6Table<int> table;
  table.insert(*Prefix6::parse("2001:db8::/32"), 1);
  table.insert(*Prefix6::parse("2001:db8:aaaa::/48"), 2);
  table.insert(*Prefix6::parse("2400::/12"), 3);
  EXPECT_EQ(*table.longest_match(*IPv6::parse("2001:db8:aaaa::1")), 2);
  EXPECT_EQ(*table.longest_match(*IPv6::parse("2001:db8:bbbb::1")), 1);
  EXPECT_EQ(*table.longest_match(*IPv6::parse("2400:cb00::1")), 3);
  EXPECT_EQ(table.longest_match(*IPv6::parse("fe80::1")), nullptr);
  EXPECT_EQ(table.size(), 3u);
}

TEST(Ipv6OnlyOperatorsTest, InvisibleToIpv4Scans) {
  const scan::World& world = testing::small_world();
  std::size_t ipv6_only = 0;
  for (topo::AsId id = 0; id < world.topology().as_count(); ++id) {
    if (world.topology().as(id).ipv6_only) ++ipv6_only;
  }
  EXPECT_GT(ipv6_only, 0u);
  // None of their servers show up in any scan.
  auto snap = world.scan(net::snapshot_count() - 1,
                         scan::ScannerKind::kRapid7);
  const auto& map = world.ip2as().at(net::snapshot_count() - 1);
  for (const auto& rec : snap.certs()) {
    for (net::Asn asn : map.lookup(rec.ip)) {
      if (auto id = world.topology().find_asn(asn)) {
        EXPECT_FALSE(world.topology().as(*id).ipv6_only);
      }
    }
  }
}

}  // namespace
}  // namespace offnet::net
