// Fixture: bad-suppression — allow() without a justification, and an
// unknown rule id.
#include <mutex>

void critical(std::mutex& m) {
  m.lock();  // offnet-lint: allow(raw-lock)
  m.unlock();  // offnet-lint: allow(not-a-rule): misspelled rule id
}
