// Fixture: a file every rule should pass.
#include <algorithm>
#include <cstddef>
#include <vector>

std::size_t count_even(const std::vector<int>& values) {
  return static_cast<std::size_t>(std::count_if(
      values.begin(), values.end(), [](int v) { return v % 2 == 0; }));
}
