#pragma once
// Fixture: include-quoted — repo header included with angle brackets.
#include <net/ipv4.h>
#include <vector>
