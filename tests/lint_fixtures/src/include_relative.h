#pragma once
// Fixture: include-relative — include path escaping its directory.
#include "../core/pipeline.h"
