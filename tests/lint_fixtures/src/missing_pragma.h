// Fixture: pragma-once — header without an include guard.
struct Unguarded {
  int value = 0;
};
