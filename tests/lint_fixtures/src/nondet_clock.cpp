// Fixture: nondet-clock — wall-clock read outside the CLI.
#include <chrono>

long long stamp() {
  return std::chrono::system_clock::now().time_since_epoch().count();
}

long long mono() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}
