// Fixture: nondet-rand — unseeded randomness outside net/rng.
#include <cstdlib>
#include <random>

int pick() {
  std::random_device entropy;
  return rand() % static_cast<int>(entropy());
}
