// Fixture: raw-artifact-write — artifact files written in place instead
// of being published through io::AtomicFile.
#include <cstdio>
#include <fstream>

void write_report(const char* path) {
  std::ofstream out(path);
  out << "results\n";
}

void write_log(const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f != nullptr) std::fclose(f);
}
