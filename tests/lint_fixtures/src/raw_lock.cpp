// Fixture: raw-lock — manual lock()/unlock() instead of RAII.
#include <mutex>

void critical(std::mutex& m, int& counter) {
  m.lock();
  ++counter;
  m.unlock();
}
