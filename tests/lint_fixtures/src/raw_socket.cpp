// Fixture: raw POSIX socket calls outside src/svc.
void raw_socket_fixture() {
  int fd = socket(2, 1, 0);          // finding: raw-socket
  ::bind(fd, nullptr, 0);            // finding: raw-socket
  int conn = accept(fd, nullptr, nullptr);  // finding: raw-socket
  send(conn, "x", 1, 0);             // finding: raw-socket
  client.send(payload);              // member call: not the POSIX API
  sender();                          // identifier prefix, not a call
}
