// Fixture: stale-suppression. The trailing grant on the lock() line is
// live (raw-lock really fires there); the standalone grant below it
// covers a line where nothing fires, so the grant has rotted; the last
// pair shows a rotted grant grandfathered by allow(stale-suppression).
void demo(core::Mutex& mu) {
  mu.lock();  // offnet-lint: allow(raw-lock): fixture exercises a live grant
  // offnet-lint: allow(raw-lock): rotted -- nothing locks below
  int x = 0;
  // offnet-lint: allow(stale-suppression): rot kept on purpose by this fixture
  // offnet-lint: allow(raw-lock): rotted but grandfathered above
  int y = 0;
  (void)x;
  (void)y;
}
