// Fixture: a real violation silenced by a justified suppression, in
// both the trailing and the standalone-comment form.
#include <mutex>

void critical(std::mutex& m, int& counter) {
  m.lock();  // offnet-lint: allow(raw-lock): fixture for the trailing form
  ++counter;
  // offnet-lint: allow(raw-lock): fixture for the standalone form
  m.unlock();
}
