// Fixture: unordered-iter — order-dependent accumulation.
#include <string>
#include <unordered_map>
#include <vector>

std::vector<std::string> keys_in_bucket_order(
    const std::unordered_map<std::string, int>& counts) {
  std::vector<std::string> out;
  for (const auto& [key, value] : counts) {
    out.push_back(key);
  }
  return out;
}
