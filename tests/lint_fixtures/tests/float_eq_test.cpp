// Fixture: float-eq — exact float comparison in a test.
void check(double ratio) {
  EXPECT_EQ(ratio, 0.758);
  if (ratio == 1.0) {
    return;
  }
}
