// Tests for offnet_lint (tools/lint): every rule id fires on its fixture,
// suppressions behave, exit codes are stable, and the real source tree is
// clean. Fixtures live in tests/lint_fixtures/ and are data, not code —
// lint_tree skips that directory when walking the repo.

#include <gtest/gtest.h>
#include <sys/wait.h>

#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "lint.h"

namespace {

using offnet::lint::Finding;
using offnet::lint::lint_file;
using offnet::lint::lint_tree;

std::string fixture_path(const std::string& name) {
  return std::string(OFFNET_SOURCE_DIR) + "/tests/lint_fixtures/" + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Lints a fixture under a virtual path (the path drives rule scoping).
std::vector<Finding> lint_fixture(const std::string& name,
                                  const std::string& virtual_path) {
  return lint_file(virtual_path, read_file(fixture_path(name)));
}

std::vector<std::string> rule_ids(const std::vector<Finding>& findings) {
  std::vector<std::string> ids;
  for (const Finding& finding : findings) ids.push_back(finding.rule);
  return ids;
}

int run_linter(const std::string& args) {
  const int status = std::system((std::string(OFFNET_LINT_BIN) + " " + args +
                                  " > /dev/null 2>&1")
                                     .c_str());
  EXPECT_NE(status, -1);
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

TEST(LintRules, NondetRandFixture) {
  auto findings = lint_fixture("src/nondet_rand.cpp", "src/nondet_rand.cpp");
  EXPECT_EQ(rule_ids(findings),
            (std::vector<std::string>{"nondet-rand", "nondet-rand"}));
}

TEST(LintRules, RandAllowedInsideNetRng) {
  const std::string text = read_file(fixture_path("src/nondet_rand.cpp"));
  EXPECT_TRUE(lint_file("src/net/rng.cpp", text).empty());
}

TEST(LintRules, NondetClockFixture) {
  auto findings =
      lint_fixture("src/nondet_clock.cpp", "src/nondet_clock.cpp");
  EXPECT_EQ(rule_ids(findings),
            (std::vector<std::string>{"nondet-clock", "nondet-clock"}));
  EXPECT_NE(findings[0].message.find("system_clock"), std::string::npos);
  EXPECT_NE(findings[1].message.find("steady_clock"), std::string::npos);
}

TEST(LintRules, WallClockAllowedInTools) {
  const std::string text = read_file(fixture_path("src/nondet_clock.cpp"));
  EXPECT_TRUE(lint_file("tools/offnet_cli.cpp", text).empty());
}

TEST(LintRules, ClockAllowedInsideObsStageTimer) {
  const std::string text = read_file(fixture_path("src/nondet_clock.cpp"));
  auto clock_findings = [&](const std::string& virtual_path) {
    std::size_t n = 0;
    for (const Finding& f : lint_file(virtual_path, text)) {
      if (f.rule == "nondet-clock") ++n;
    }
    return n;
  };
  EXPECT_EQ(clock_findings("src/obs/stage_timer.cpp"), 0u);
  EXPECT_EQ(clock_findings("src/obs/stage_timer.h"), 0u);
  // The exemption is the file, not the directory.
  EXPECT_EQ(clock_findings("src/obs/metrics.cpp"), 2u);
}

TEST(LintRules, RawLockFixture) {
  auto findings = lint_fixture("src/raw_lock.cpp", "src/raw_lock.cpp");
  EXPECT_EQ(rule_ids(findings),
            (std::vector<std::string>{"raw-lock", "raw-lock"}));
  EXPECT_EQ(findings[0].line, 5u);
  EXPECT_EQ(findings[1].line, 7u);
}

TEST(LintRules, UnorderedIterFixture) {
  auto findings =
      lint_fixture("src/unordered_iter.cpp", "src/unordered_iter.cpp");
  EXPECT_EQ(rule_ids(findings),
            (std::vector<std::string>{"unordered-iter"}));
}

TEST(LintRules, UnorderedIterOnlyAppliesToSrc) {
  const std::string text = read_file(fixture_path("src/unordered_iter.cpp"));
  EXPECT_TRUE(lint_file("bench/unordered_iter.cpp", text).empty());
}

TEST(LintRules, RawArtifactWriteFixture) {
  auto findings = lint_fixture("src/raw_artifact_write.cpp",
                               "src/io/raw_artifact_write.cpp");
  EXPECT_EQ(rule_ids(findings),
            (std::vector<std::string>{"raw-artifact-write",
                                      "raw-artifact-write"}));
  EXPECT_EQ(findings[0].line, 7u);   // std::ofstream
  EXPECT_EQ(findings[1].line, 12u);  // std::fopen
  EXPECT_NE(findings[0].message.find("io::AtomicFile"), std::string::npos);
}

TEST(LintRules, RawArtifactWriteAppliesToTools) {
  const std::string text =
      read_file(fixture_path("src/raw_artifact_write.cpp"));
  EXPECT_EQ(lint_file("tools/offnet_cli.cpp", text).size(), 2u);
}

TEST(LintRules, RawArtifactWriteSkipsTestsAndBench) {
  const std::string text =
      read_file(fixture_path("src/raw_artifact_write.cpp"));
  EXPECT_TRUE(lint_file("tests/scratch_test.cpp", text).empty());
  EXPECT_TRUE(lint_file("bench/bench_common.cpp", text).empty());
}

TEST(LintRules, RawArtifactWriteSuppressible) {
  const std::string text =
      "// offnet-lint: allow(raw-artifact-write): scratch file\n"
      "std::ofstream out(path);\n";
  EXPECT_TRUE(lint_file("src/io/example.cpp", text).empty());
}

TEST(LintRules, RawSocketFixture) {
  auto findings = lint_fixture("src/raw_socket.cpp", "src/raw_socket.cpp");
  EXPECT_EQ(rule_ids(findings),
            (std::vector<std::string>{"raw-socket", "raw-socket",
                                      "raw-socket", "raw-socket"}));
  EXPECT_NE(findings[0].message.find("src/svc"), std::string::npos);
}

TEST(LintRules, RawSocketAllowedInsideSvc) {
  const std::string text = read_file(fixture_path("src/raw_socket.cpp"));
  auto socket_findings = [&](const std::string& virtual_path) {
    std::size_t n = 0;
    for (const Finding& f : lint_file(virtual_path, text)) {
      if (f.rule == "raw-socket") ++n;
    }
    return n;
  };
  EXPECT_EQ(socket_findings("src/svc/socket.cpp"), 0u);
  EXPECT_EQ(socket_findings("tools/offnetd.cpp"), 4u);
  EXPECT_EQ(socket_findings("bench/bench_offnetd.cpp"), 4u);
  EXPECT_EQ(socket_findings("tests/svc_test.cpp"), 0u);
}

TEST(LintRules, FloatEqFixture) {
  auto findings =
      lint_fixture("tests/float_eq_test.cpp", "tests/float_eq_test.cpp");
  EXPECT_EQ(rule_ids(findings),
            (std::vector<std::string>{"float-eq", "float-eq"}));
}

TEST(LintRules, FloatEqOnlyAppliesToTests) {
  const std::string text = read_file(fixture_path("tests/float_eq_test.cpp"));
  EXPECT_TRUE(lint_file("src/float_eq.cpp", text).empty());
}

TEST(LintRules, IncludeQuotedFixture) {
  auto findings =
      lint_fixture("src/include_quoted.h", "src/include_quoted.h");
  EXPECT_EQ(rule_ids(findings),
            (std::vector<std::string>{"include-quoted"}));
  EXPECT_EQ(findings[0].line, 3u);
}

TEST(LintRules, IncludeRelativeFixture) {
  auto findings =
      lint_fixture("src/include_relative.h", "src/include_relative.h");
  EXPECT_EQ(rule_ids(findings),
            (std::vector<std::string>{"include-relative"}));
}

TEST(LintRules, PragmaOnceFixture) {
  auto findings =
      lint_fixture("src/missing_pragma.h", "src/missing_pragma.h");
  EXPECT_EQ(rule_ids(findings), (std::vector<std::string>{"pragma-once"}));
  EXPECT_EQ(findings[0].line, 1u);
}

TEST(LintSuppressions, JustifiedSuppressionSilencesBothForms) {
  auto findings = lint_fixture("src/suppressed.cpp", "src/suppressed.cpp");
  EXPECT_TRUE(findings.empty())
      << "unexpected: " << offnet::lint::format(findings.front());
}

TEST(LintSuppressions, MissingJustificationAndUnknownRuleAreFindings) {
  auto findings =
      lint_fixture("src/bad_suppression.cpp", "src/bad_suppression.cpp");
  // Neither bad suppression silences its raw-lock finding.
  std::multiset<std::string> ids;
  for (const Finding& finding : findings) ids.insert(finding.rule);
  EXPECT_EQ(ids.count("bad-suppression"), 2u);
  EXPECT_EQ(ids.count("raw-lock"), 2u);
  EXPECT_EQ(findings.size(), 4u);
}

TEST(LintSuppressions, StaleSuppressionFixture) {
  auto findings = lint_fixture("src/stale_suppression.cpp",
                               "src/stale_suppression.cpp");
  // Line 6's grant is live (raw-lock fires under it), line 7's has
  // rotted, and line 10's rot is grandfathered by the
  // allow(stale-suppression) on line 9 — exactly one finding.
  ASSERT_EQ(rule_ids(findings),
            (std::vector<std::string>{"stale-suppression"}));
  EXPECT_EQ(findings[0].line, 7u);
  EXPECT_NE(findings[0].message.find("raw-lock"), std::string::npos);
}

TEST(LintSuppressions, UnusedStaleSuppressionGrantIsItselfStale) {
  const std::string text =
      "// offnet-lint: allow(stale-suppression): nothing rotted here\n"
      "int x = 0;\n";
  auto findings = lint_file("src/example.cpp", text);
  ASSERT_EQ(rule_ids(findings),
            (std::vector<std::string>{"stale-suppression"}));
  EXPECT_EQ(findings[0].line, 1u);
}

TEST(LintClean, CleanFixtureHasNoFindings) {
  auto findings = lint_fixture("src/clean.cpp", "src/clean.cpp");
  EXPECT_TRUE(findings.empty())
      << "unexpected: " << offnet::lint::format(findings.front());
}

TEST(LintClean, FormatIsFileLineRuleMessage) {
  Finding finding{"src/a.cpp", 12, "raw-lock", "message"};
  EXPECT_EQ(offnet::lint::format(finding), "src/a.cpp:12: raw-lock: message");
}

TEST(LintClean, RealTreeLintsClean) {
  const std::string root(OFFNET_SOURCE_DIR);
  auto findings = lint_tree(
      {root + "/src", root + "/tools", root + "/bench", root + "/tests"});
  for (const Finding& finding : findings) {
    ADD_FAILURE() << offnet::lint::format(finding);
  }
  EXPECT_TRUE(findings.empty());
}

TEST(LintExitCodes, BinaryContract) {
  const std::string root(OFFNET_SOURCE_DIR);
  // Clean input -> 0.
  EXPECT_EQ(run_linter(root + "/tests/lint_fixtures/src/clean.cpp"), 0);
  // Findings -> 1 (the fixture tree is full of them).
  EXPECT_EQ(run_linter(root + "/tests/lint_fixtures/src"), 1);
  // Usage error -> 2.
  EXPECT_EQ(run_linter(""), 2);
  EXPECT_EQ(run_linter("--bogus-flag"), 2);
}

}  // namespace
