// End-to-end tests for pipeline/series instrumentation: the §4 funnel
// drop counters are live, the exported metrics (minus "timing") are
// byte-identical at any thread count, and longitudinal runs account for
// every snapshot's health and ingestion report.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "core/longitudinal.h"
#include "core/pipeline.h"
#include "scan/export.h"
#include "io/loaders.h"
#include "obs/exporter.h"
#include "obs/metrics.h"
#include "test_world.h"

namespace offnet::core {
namespace {

namespace mn = metric_names;

/// Runs one snapshot through the pipeline with `threads` workers,
/// recording into `metrics`.
SnapshotResult run_snapshot(const scan::World& world, std::size_t t,
                            std::size_t threads, obs::Registry& metrics) {
  PipelineOptions options;
  options.n_threads = threads;
  options.metrics = &metrics;
  OffnetPipeline pipeline(world.topology(), world.ip2as(), world.certs(),
                          world.roots(), standard_hg_inputs(), options);
  return pipeline.run(world.scan(t, scan::ScannerKind::kRapid7));
}

TEST(MetricsPipelineTest, FunnelDropCountersAreLive) {
  const scan::World& world = testing::small_world();
  obs::Registry metrics;
  SnapshotResult result =
      run_snapshot(world, net::snapshot_count() - 1, 1, metrics);
  obs::RegistrySnapshot snap = metrics.snapshot();

  // Stage counts line up with the pipeline's own result.
  EXPECT_EQ(snap.counters.at(mn::kIps), result.stats.total_records);
  EXPECT_EQ(snap.counters.at(mn::kCandidateIps),
            result.stats.hg_cert_ips_offnet);
  EXPECT_GT(snap.counters.at(mn::kRecords), 0u);
  EXPECT_GT(snap.counters.at(mn::kCertsReferenced), 0u);
  EXPECT_GT(snap.counters.at(mn::kOnnetRecords), 0u);
  EXPECT_GT(snap.counters.at(mn::kConfirmedIps), 0u);

  // Every §4.1–§4.5 drop reason has a live counter, and the simulated
  // world exercises each of the funnel's rejection paths.
  EXPECT_GT(snap.counters.at(mn::kDropInvalidChain), 0u);    // §4.1
  EXPECT_GT(snap.counters.at(mn::kDropOrgKeywordMiss), 0u);  // §4.2
  EXPECT_GT(snap.counters.at(mn::kDropSubsetRule), 0u);      // §4.3
  EXPECT_GT(snap.counters.at(mn::kDropHeaderMiss), 0u);      // §4.5
  // The §7 filters exist even when they drop nothing here.
  EXPECT_EQ(snap.counters.count(mn::kDropCloudflareSsl), 1u);
  EXPECT_EQ(snap.counters.count(mn::kDropEdgeConflict), 1u);

  EXPECT_EQ(snap.gauges.at("pipeline/hypergiants"),
            static_cast<std::int64_t>(standard_hg_inputs().size()));
  EXPECT_EQ(snap.histograms.at("pipeline/candidate_ases_per_hg").count,
            standard_hg_inputs().size());

  // Stage timings landed, but only under "timing".
  EXPECT_GT(snap.timings.at("pipeline/run").calls, 0u);
  EXPECT_GT(snap.timings.at("pipeline/pass1_onnet").calls, 0u);
  EXPECT_GT(snap.timings.at("pipeline/confirm").calls, 0u);
}

TEST(MetricsPipelineTest, DeterministicJsonIdenticalAcrossThreadCounts) {
  const scan::World& world = testing::small_world();
  const std::size_t t = net::snapshot_count() - 1;

  obs::Registry serial;
  run_snapshot(world, t, 1, serial);
  const std::string serial_json =
      obs::MetricsExporter::deterministic_json(serial);
  EXPECT_EQ(serial_json.find("\"timing\""), std::string::npos);

  for (std::size_t threads : {std::size_t{4}, std::size_t{8}}) {
    obs::Registry threaded;
    run_snapshot(world, t, threads, threaded);
    EXPECT_EQ(obs::MetricsExporter::deterministic_json(threaded),
              serial_json)
        << "metrics diverged at " << threads << " threads";
  }
}

TEST(MetricsPipelineTest, DeterministicJsonMatchesGoldenFile) {
  // The export is pinned byte-for-byte against a checked-in golden
  // file, so the metric-name registry (core::metric_names and friends,
  // DESIGN.md §9/§13) cannot drift silently: renaming a constant's
  // value, or bypassing a constant with a differently-spelled literal,
  // changes the export and fails here. Regenerate after an intentional
  // rename by writing deterministic_json(serial) over the golden file.
  const scan::World& world = testing::small_world();
  obs::Registry metrics;
  run_snapshot(world, net::snapshot_count() - 1, 1, metrics);
  const std::string json =
      obs::MetricsExporter::deterministic_json(metrics);

  const std::string golden_path = std::string(OFFNET_SOURCE_DIR) +
                                  "/tests/golden/metrics_pipeline.json";
  std::ifstream in(golden_path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden file " << golden_path;
  std::ostringstream golden;
  golden << in.rdbuf();
  EXPECT_EQ(json, golden.str())
      << "deterministic metrics export drifted from " << golden_path;
}

TEST(MetricsSeriesTest, WorldRunAccountsForEverySnapshotsHealth) {
  const scan::World& world = testing::tiny_world();
  // Censys starts mid-study, so the include-missing series holds both
  // kComplete results and kMissing placeholders.
  obs::Registry metrics;
  PipelineOptions options;
  options.metrics = &metrics;
  LongitudinalRunner runner(world, scan::ScannerKind::kCensys, options);
  runner.set_include_missing(true);
  auto results = runner.run();

  obs::RegistrySnapshot snap = metrics.snapshot();
  EXPECT_EQ(snap.counters.at("series/snapshots"), results.size());
  EXPECT_EQ(snap.counters.at("series/snapshots"), net::snapshot_count());
  EXPECT_GT(snap.counters.at("series/health/complete"), 0u);
  EXPECT_GT(snap.counters.at("series/health/missing"), 0u);
  EXPECT_EQ(snap.counters.at("series/health/complete") +
                snap.counters.at("series/health/missing"),
            results.size());
}

TEST(MetricsSeriesTest, SerialAndFanOutSeriesMetricsMatch) {
  const scan::World& world = testing::tiny_world();
  const std::size_t last = net::snapshot_count() - 1;
  const std::size_t first = last - 3;

  obs::Registry serial_metrics;
  PipelineOptions serial_options;
  serial_options.metrics = &serial_metrics;
  LongitudinalRunner serial(world, scan::ScannerKind::kRapid7,
                            serial_options);
  serial.run(first, last);

  obs::Registry fanout_metrics;
  PipelineOptions fanout_options;
  fanout_options.n_threads = 4;
  fanout_options.metrics = &fanout_metrics;
  LongitudinalRunner fanout(world, scan::ScannerKind::kRapid7,
                            fanout_options);
  fanout.run(first, last);

  EXPECT_EQ(obs::MetricsExporter::deterministic_json(fanout_metrics),
            obs::MetricsExporter::deterministic_json(serial_metrics));
}

TEST(MetricsSeriesTest, RunLoadedRecordsHealthAndIngestionCounters) {
  const scan::World& world = testing::tiny_world();
  const std::size_t kFirst = 16, kLast = 18, kMissing = 17, kCorrupt = 18;

  obs::Registry metrics;
  PipelineOptions options;
  options.metrics = &metrics;
  LongitudinalRunner runner{options};
  auto results = runner.run_loaded(
      [&](std::size_t t) {
        SnapshotFeed feed;
        if (t == kMissing) return feed;
        if (t == kCorrupt) {
          feed.corrupt = true;
          // A corrupt snapshot still carries its partial accounting.
          feed.report.files.push_back(
              io::FileReport{"certificates", 0, 12, {}});
          return feed;
        }
        scan::ScanSnapshot snapshot =
            world.scan(t, scan::ScannerKind::kRapid7);
        std::ostringstream rel, org, pfx, certs, hosts, headers;
        scan::export_dataset(
            world, snapshot,
            io::ExportStreams{rel, org, pfx, certs, hosts, headers});
        std::istringstream rel_in(rel.str()), org_in(org.str()),
            pfx_in(pfx.str()), certs_in(certs.str()), hosts_in(hosts.str()),
            headers_in(headers.str());
        feed.dataset = io::load_dataset(rel_in, org_in, pfx_in, certs_in,
                                        hosts_in, net::study_snapshots()[t],
                                        {}, &feed.report);
        feed.dataset->add_headers(headers_in, {}, &feed.report);
        return feed;
      },
      kFirst, kLast);

  ASSERT_EQ(results.size(), kLast - kFirst + 1);
  obs::RegistrySnapshot snap = metrics.snapshot();
  EXPECT_EQ(snap.counters.at("series/snapshots"), results.size());
  EXPECT_EQ(snap.counters.at("series/health/complete"), 1u);
  EXPECT_EQ(snap.counters.at("series/health/missing"), 1u);
  EXPECT_EQ(snap.counters.at("series/health/corrupt"), 1u);

  // The loaded snapshot's ingestion totals flowed into load/*, and the
  // corrupt snapshot's partial report is accounted too.
  EXPECT_GT(snap.counters.at("load/lines_ok"), 0u);
  EXPECT_EQ(snap.counters.at("load/lines_skipped"), 12u);
  EXPECT_EQ(snap.counters.at("load/certificates/lines_skipped"), 12u);
}

}  // namespace
}  // namespace offnet::core
