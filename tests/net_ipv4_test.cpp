#include <gtest/gtest.h>

#include "net/ipv4.h"
#include "net/prefix.h"

namespace offnet::net {
namespace {

TEST(IPv4Test, FromOctets) {
  IPv4 ip = IPv4::from_octets(192, 168, 1, 200);
  EXPECT_EQ(ip.value(), 0xc0a801c8u);
  EXPECT_EQ(ip.octet(0), 192);
  EXPECT_EQ(ip.octet(1), 168);
  EXPECT_EQ(ip.octet(2), 1);
  EXPECT_EQ(ip.octet(3), 200);
}

TEST(IPv4Test, Ordering) {
  EXPECT_LT(IPv4::from_octets(1, 2, 3, 4), IPv4::from_octets(1, 2, 3, 5));
  EXPECT_LT(IPv4::from_octets(9, 255, 255, 255), IPv4::from_octets(10, 0, 0, 0));
  EXPECT_EQ(IPv4(42), IPv4(42));
}

TEST(IPv4Test, Arithmetic) {
  EXPECT_EQ(IPv4::from_octets(10, 0, 0, 0) + 257,
            IPv4::from_octets(10, 0, 1, 1));
}

struct ParseCase {
  const char* text;
  bool ok;
  std::uint32_t value;
};

class IPv4ParseTest : public ::testing::TestWithParam<ParseCase> {};

TEST_P(IPv4ParseTest, Parse) {
  const ParseCase& c = GetParam();
  auto parsed = IPv4::parse(c.text);
  EXPECT_EQ(parsed.has_value(), c.ok) << c.text;
  if (c.ok && parsed) {
    EXPECT_EQ(parsed->value(), c.value) << c.text;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, IPv4ParseTest,
    ::testing::Values(
        ParseCase{"0.0.0.0", true, 0},
        ParseCase{"255.255.255.255", true, 0xffffffffu},
        ParseCase{"1.2.3.4", true, 0x01020304u},
        ParseCase{"192.168.0.1", true, 0xc0a80001u},
        ParseCase{"10.0.0.255", true, 0x0a0000ffu},
        ParseCase{"256.0.0.1", false, 0},
        ParseCase{"1.2.3", false, 0},
        ParseCase{"1.2.3.4.5", false, 0},
        ParseCase{"1.2.3.4 ", false, 0},
        ParseCase{" 1.2.3.4", false, 0},
        ParseCase{"1..3.4", false, 0},
        ParseCase{"a.b.c.d", false, 0},
        ParseCase{"", false, 0},
        ParseCase{"1.2.3.-4", false, 0},
        // Leading-zero octets are not dotted-quad (regression: these
        // used to parse, and octal-aware tools read them differently).
        ParseCase{"01.2.3.4", false, 0},
        ParseCase{"1.2.3.04", false, 0},
        ParseCase{"1.02.3.4", false, 0},
        ParseCase{"192.168.001.1", false, 0},
        ParseCase{"00.0.0.0", false, 0}));

TEST(IPv4Test, ToStringRoundTrip) {
  for (std::uint32_t v : {0u, 1u, 0x01020304u, 0xc0a80001u, 0xffffffffu,
                          0x7f000001u, 0x08080808u}) {
    IPv4 ip(v);
    auto parsed = IPv4::parse(ip.to_string());
    ASSERT_TRUE(parsed.has_value()) << ip.to_string();
    EXPECT_EQ(parsed->value(), v);
  }
}

TEST(PrefixTest, MasksBase) {
  Prefix p(IPv4::from_octets(10, 1, 2, 3), 8);
  EXPECT_EQ(p.base(), IPv4::from_octets(10, 0, 0, 0));
  EXPECT_EQ(p.length(), 8);
  EXPECT_EQ(p.size(), 1u << 24);
  EXPECT_EQ(p, Prefix(IPv4::from_octets(10, 200, 0, 77), 8));
}

TEST(PrefixTest, ContainsAddress) {
  Prefix p(IPv4::from_octets(192, 168, 4, 0), 22);
  EXPECT_TRUE(p.contains(IPv4::from_octets(192, 168, 4, 0)));
  EXPECT_TRUE(p.contains(IPv4::from_octets(192, 168, 7, 255)));
  EXPECT_FALSE(p.contains(IPv4::from_octets(192, 168, 8, 0)));
  EXPECT_FALSE(p.contains(IPv4::from_octets(192, 168, 3, 255)));
  EXPECT_EQ(p.first_address(), IPv4::from_octets(192, 168, 4, 0));
  EXPECT_EQ(p.last_address(), IPv4::from_octets(192, 168, 7, 255));
}

TEST(PrefixTest, ContainsPrefixAndOverlap) {
  Prefix big(IPv4::from_octets(10, 0, 0, 0), 8);
  Prefix mid(IPv4::from_octets(10, 64, 0, 0), 10);
  Prefix other(IPv4::from_octets(11, 0, 0, 0), 8);
  EXPECT_TRUE(big.contains(mid));
  EXPECT_FALSE(mid.contains(big));
  EXPECT_TRUE(big.overlaps(mid));
  EXPECT_TRUE(mid.overlaps(big));
  EXPECT_FALSE(big.overlaps(other));
  EXPECT_TRUE(big.contains(big));
}

TEST(PrefixTest, ZeroLengthCoversEverything) {
  Prefix all(IPv4(12345), 0);
  EXPECT_EQ(all.base(), IPv4(0));
  EXPECT_EQ(all.size(), std::uint64_t{1} << 32);
  EXPECT_TRUE(all.contains(IPv4(0xffffffffu)));
}

TEST(PrefixTest, Parse) {
  auto p = Prefix::parse("10.2.0.0/16");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->base(), IPv4::from_octets(10, 2, 0, 0));
  EXPECT_EQ(p->length(), 16);
  EXPECT_FALSE(Prefix::parse("10.2.0.0/33").has_value());
  EXPECT_FALSE(Prefix::parse("10.2.0.0").has_value());
  EXPECT_FALSE(Prefix::parse("10.2.0/16").has_value());
  EXPECT_EQ(Prefix::parse("10.2.0.0/16")->to_string(), "10.2.0.0/16");
}

TEST(PrefixTest, BogonDetection) {
  EXPECT_TRUE(is_bogon(IPv4::from_octets(10, 1, 2, 3)));
  EXPECT_TRUE(is_bogon(IPv4::from_octets(127, 0, 0, 1)));
  EXPECT_TRUE(is_bogon(IPv4::from_octets(192, 168, 55, 1)));
  EXPECT_TRUE(is_bogon(IPv4::from_octets(224, 0, 0, 5)));
  EXPECT_TRUE(is_bogon(IPv4::from_octets(255, 255, 255, 255)));
  EXPECT_TRUE(is_bogon(IPv4::from_octets(100, 64, 0, 1)));
  EXPECT_FALSE(is_bogon(IPv4::from_octets(8, 8, 8, 8)));
  EXPECT_FALSE(is_bogon(IPv4::from_octets(1, 1, 1, 1)));
  EXPECT_FALSE(is_bogon(IPv4::from_octets(100, 128, 0, 1)));
}

TEST(PrefixTest, BogonPrefixOverlap) {
  // A prefix enclosing a bogon block is itself tainted.
  EXPECT_TRUE(is_bogon(Prefix(IPv4::from_octets(192, 0, 0, 0), 2)));
  EXPECT_TRUE(is_bogon(Prefix(IPv4::from_octets(10, 1, 0, 0), 16)));
  EXPECT_FALSE(is_bogon(Prefix(IPv4::from_octets(8, 0, 0, 0), 8)));
}

TEST(PrefixTest, ReservedAsns) {
  EXPECT_TRUE(is_reserved_asn(0));
  EXPECT_TRUE(is_reserved_asn(23456));
  EXPECT_TRUE(is_reserved_asn(64496));
  EXPECT_TRUE(is_reserved_asn(64512));
  EXPECT_TRUE(is_reserved_asn(65535));
  EXPECT_TRUE(is_reserved_asn(65551));
  EXPECT_TRUE(is_reserved_asn(4200000000u));
  EXPECT_TRUE(is_reserved_asn(4294967295u));
  EXPECT_FALSE(is_reserved_asn(15169));
  EXPECT_FALSE(is_reserved_asn(65552));
  EXPECT_FALSE(is_reserved_asn(131072));
}

}  // namespace
}  // namespace offnet::net
