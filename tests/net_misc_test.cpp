#include <gtest/gtest.h>

#include <numeric>
#include <unordered_set>

#include "net/date.h"
#include "net/rng.h"
#include "net/table.h"

namespace offnet::net {
namespace {

TEST(YearMonthTest, Arithmetic) {
  YearMonth ym(2013, 10);
  EXPECT_EQ(ym.plus_months(3), YearMonth(2014, 1));
  EXPECT_EQ(ym.plus_months(12), YearMonth(2014, 10));
  EXPECT_EQ(ym.plus_months(-10), YearMonth(2012, 12));
  EXPECT_EQ(YearMonth(2013, 10).months_until(YearMonth(2021, 4)), 90);
}

TEST(YearMonthTest, Parse) {
  auto ym = YearMonth::parse("2017-04");
  ASSERT_TRUE(ym.has_value());
  EXPECT_EQ(*ym, YearMonth(2017, 4));
  EXPECT_FALSE(YearMonth::parse("2017-13").has_value());
  EXPECT_FALSE(YearMonth::parse("2017").has_value());
  EXPECT_FALSE(YearMonth::parse("2017-").has_value());
  EXPECT_FALSE(YearMonth::parse("x-4").has_value());
}

TEST(YearMonthTest, ParseRejectsYearsOutsideStudyEra) {
  // Regression: unbounded years used to parse ("99999-01"), flowing
  // absurd month indices into snapshot arithmetic.
  EXPECT_FALSE(YearMonth::parse("99999-01").has_value());
  EXPECT_FALSE(YearMonth::parse("1899-01").has_value());
  EXPECT_FALSE(YearMonth::parse("123456-12").has_value());
  EXPECT_FALSE(YearMonth::parse("-2017-04").has_value());
  // The accepted range stays generous around the 2013–2021 study.
  EXPECT_TRUE(YearMonth::parse("1990-01").has_value());
  EXPECT_TRUE(YearMonth::parse("2100-12").has_value());
  EXPECT_FALSE(YearMonth::parse("1989-12").has_value());
  EXPECT_FALSE(YearMonth::parse("2101-01").has_value());
}

TEST(YearMonthTest, ToStringPadsMonth) {
  EXPECT_EQ(YearMonth(2013, 10).to_string(), "2013-10");
  EXPECT_EQ(YearMonth(2021, 4).to_string(), "2021-04");
}

TEST(StudySnapshotsTest, ThirtyOneQuarterlySnapshots) {
  auto snaps = study_snapshots();
  ASSERT_EQ(snaps.size(), 31u);
  EXPECT_EQ(snaps.front(), YearMonth(2013, 10));
  EXPECT_EQ(snaps.back(), YearMonth(2021, 4));
  for (std::size_t i = 1; i < snaps.size(); ++i) {
    EXPECT_EQ(snaps[i - 1].months_until(snaps[i]), 3);
  }
  EXPECT_EQ(snapshot_count(), 31u);
}

TEST(StudySnapshotsTest, SnapshotIndex) {
  EXPECT_EQ(snapshot_index(YearMonth(2013, 10)), 0u);
  EXPECT_EQ(snapshot_index(YearMonth(2014, 1)), 1u);
  EXPECT_EQ(snapshot_index(YearMonth(2021, 4)), 30u);
  EXPECT_FALSE(snapshot_index(YearMonth(2013, 11)).has_value());
  EXPECT_FALSE(snapshot_index(YearMonth(2013, 7)).has_value());
  EXPECT_FALSE(snapshot_index(YearMonth(2021, 7)).has_value());
}

TEST(DayTimeTest, Ordering) {
  auto a = DayTime::from(YearMonth(2017, 4));
  auto b = DayTime::from(YearMonth(2017, 4), 15);
  auto c = DayTime::from(YearMonth(2017, 5));
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_EQ(a.plus_days(14), b);
}

TEST(DayTimeTest, DateStringIsDayResolution) {
  EXPECT_EQ(DayTime::from(YearMonth(2017, 4), 15).date_string(),
            "2017-04-15");
  EXPECT_EQ(DayTime::from(YearMonth(2021, 12)).date_string(), "2021-12-01");
}

TEST(RngTest, Deterministic) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniform(0, 1000000), b.uniform(0, 1000000));
  }
}

TEST(RngTest, ForkIndependence) {
  Rng base(7);
  Rng a = base.fork("alpha");
  // Forked streams differ from each other and are insensitive to how
  // much the parent consumed.
  Rng base2(7);
  base2.uniform(0, 10);
  Rng a2 = base2.fork("alpha");
  EXPECT_EQ(a.uniform(0, 1 << 30), a2.uniform(0, 1 << 30));
  bool any_diff = false;
  Rng a3 = Rng(7).fork("alpha");
  Rng b3 = Rng(7).fork("beta");
  for (int i = 0; i < 32; ++i) {
    if (a3.uniform(0, 1000) != b3.uniform(0, 1000)) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, UniformBounds) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    auto v = rng.uniform(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(1);
  EXPECT_FALSE(rng.bernoulli(0.0));
  EXPECT_TRUE(rng.bernoulli(1.0));
}

TEST(RngTest, SampleIndicesDistinct) {
  Rng rng(3);
  for (std::size_t n : {std::size_t{10}, std::size_t{100}, std::size_t{1000}}) {
    for (std::size_t k :
         {std::size_t{0}, std::size_t{1}, std::size_t{5}, n / 2, n, n + 10}) {
      auto sample = rng.sample_indices(n, k);
      EXPECT_EQ(sample.size(), std::min(k, n));
      std::unordered_set<std::size_t> seen(sample.begin(), sample.end());
      EXPECT_EQ(seen.size(), sample.size());
      for (std::size_t idx : sample) EXPECT_LT(idx, n);
    }
  }
}

TEST(RngTest, WeightedIndexRespectsWeights) {
  Rng rng(5);
  std::vector<double> weights = {0.0, 10.0, 0.0, 1.0};
  std::array<int, 4> counts{};
  for (int i = 0; i < 11000; ++i) {
    counts[rng.weighted_index(weights)]++;
  }
  EXPECT_EQ(counts[0], 0);
  EXPECT_EQ(counts[2], 0);
  EXPECT_GT(counts[1], counts[3] * 5);
  EXPECT_GT(counts[3], 500);
}

TEST(RngTest, PoissonMean) {
  Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) sum += rng.poisson(4.0);
  EXPECT_NEAR(sum / 20000.0, 4.0, 0.1);
}

TEST(RngTest, HashStable) {
  EXPECT_EQ(Rng::hash("offnet"), Rng::hash("offnet"));
  EXPECT_NE(Rng::hash("offnet"), Rng::hash("offnets"));
  EXPECT_NE(Rng::hash(""), Rng::hash("a"));
}

TEST(TableTest, AlignsColumns) {
  TextTable table({"name", "count"});
  table.add("alpha", 1);
  table.add("b", 12345);
  std::string out = table.to_string();
  EXPECT_NE(out.find("name   count"), std::string::npos);
  EXPECT_NE(out.find("alpha  1"), std::string::npos);
  EXPECT_NE(out.find("b      12345"), std::string::npos);
}

TEST(TableTest, Percent) {
  EXPECT_EQ(percent(0.5), "50.0%");
  EXPECT_EQ(percent(0.123), "12.3%");
  EXPECT_EQ(percent(1.0), "100.0%");
}

TEST(TableTest, WithCommas) {
  EXPECT_EQ(with_commas(0), "0");
  EXPECT_EQ(with_commas(999), "999");
  EXPECT_EQ(with_commas(1000), "1,000");
  EXPECT_EQ(with_commas(127812006), "127,812,006");
  EXPECT_EQ(with_commas(-1234567), "-1,234,567");
}

TEST(TableTest, IContains) {
  EXPECT_TRUE(icontains("Google LLC", "google"));
  EXPECT_TRUE(icontains("AKAMAI Technologies", "akamai"));
  EXPECT_TRUE(icontains("abc", ""));
  EXPECT_FALSE(icontains("", "a"));
  EXPECT_FALSE(icontains("Googol Hosting", "google"));
  EXPECT_TRUE(icontains("x", "X"));
}

TEST(TableTest, ToLower) {
  EXPECT_EQ(to_lower("AbC-123"), "abc-123");
}

}  // namespace
}  // namespace offnet::net
