#include <gtest/gtest.h>

#include <map>
#include <optional>

#include "net/prefix_trie.h"
#include "net/rng.h"

namespace offnet::net {
namespace {

TEST(PrefixTrieTest, EmptyTrie) {
  PrefixTrie<int> trie;
  EXPECT_TRUE(trie.empty());
  EXPECT_EQ(trie.size(), 0u);
  EXPECT_EQ(trie.longest_match(IPv4(123)), nullptr);
  EXPECT_EQ(trie.find(Prefix(IPv4(0), 8)), nullptr);
}

TEST(PrefixTrieTest, InsertAndExactFind) {
  PrefixTrie<int> trie;
  trie.insert(*Prefix::parse("10.0.0.0/8"), 1);
  trie.insert(*Prefix::parse("10.1.0.0/16"), 2);
  trie.insert(*Prefix::parse("10.1.2.0/24"), 3);
  EXPECT_EQ(trie.size(), 3u);
  EXPECT_EQ(*trie.find(*Prefix::parse("10.0.0.0/8")), 1);
  EXPECT_EQ(*trie.find(*Prefix::parse("10.1.0.0/16")), 2);
  EXPECT_EQ(*trie.find(*Prefix::parse("10.1.2.0/24")), 3);
  EXPECT_EQ(trie.find(*Prefix::parse("10.1.0.0/17")), nullptr);
  EXPECT_EQ(trie.find(*Prefix::parse("10.0.0.0/9")), nullptr);
}

TEST(PrefixTrieTest, OverwriteKeepsSize) {
  PrefixTrie<int> trie;
  trie.insert(*Prefix::parse("10.0.0.0/8"), 1);
  trie.insert(*Prefix::parse("10.0.0.0/8"), 9);
  EXPECT_EQ(trie.size(), 1u);
  EXPECT_EQ(*trie.find(*Prefix::parse("10.0.0.0/8")), 9);
}

TEST(PrefixTrieTest, LongestMatchPrefersMostSpecific) {
  PrefixTrie<int> trie;
  trie.insert(*Prefix::parse("10.0.0.0/8"), 1);
  trie.insert(*Prefix::parse("10.1.0.0/16"), 2);
  trie.insert(*Prefix::parse("10.1.2.0/24"), 3);
  EXPECT_EQ(*trie.longest_match(*IPv4::parse("10.1.2.3")), 3);
  EXPECT_EQ(*trie.longest_match(*IPv4::parse("10.1.3.3")), 2);
  EXPECT_EQ(*trie.longest_match(*IPv4::parse("10.9.9.9")), 1);
  EXPECT_EQ(trie.longest_match(*IPv4::parse("11.0.0.1")), nullptr);
}

TEST(PrefixTrieTest, DefaultRouteMatchesEverything) {
  PrefixTrie<int> trie;
  trie.insert(Prefix(IPv4(0), 0), 42);
  EXPECT_EQ(*trie.longest_match(IPv4(0)), 42);
  EXPECT_EQ(*trie.longest_match(IPv4(0xffffffffu)), 42);
}

TEST(PrefixTrieTest, HostRoute) {
  PrefixTrie<int> trie;
  trie.insert(Prefix(*IPv4::parse("1.2.3.4"), 32), 7);
  EXPECT_EQ(*trie.longest_match(*IPv4::parse("1.2.3.4")), 7);
  EXPECT_EQ(trie.longest_match(*IPv4::parse("1.2.3.5")), nullptr);
}

TEST(PrefixTrieTest, LongestMatchEntryReportsPrefix) {
  PrefixTrie<int> trie;
  trie.insert(*Prefix::parse("10.1.0.0/16"), 2);
  auto match = trie.longest_match_entry(*IPv4::parse("10.1.200.1"));
  ASSERT_TRUE(match.has_value());
  EXPECT_EQ(match->prefix, *Prefix::parse("10.1.0.0/16"));
  EXPECT_EQ(*match->value, 2);
}

TEST(PrefixTrieTest, ForEachVisitsAllInOrder) {
  PrefixTrie<int> trie;
  trie.insert(*Prefix::parse("10.0.0.0/8"), 1);
  trie.insert(*Prefix::parse("9.0.0.0/8"), 0);
  trie.insert(*Prefix::parse("10.128.0.0/9"), 2);
  std::vector<std::pair<std::string, int>> seen;
  trie.for_each([&](const Prefix& p, int v) {
    seen.emplace_back(p.to_string(), v);
  });
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0].first, "9.0.0.0/8");
  EXPECT_EQ(seen[1].first, "10.0.0.0/8");
  EXPECT_EQ(seen[2].first, "10.128.0.0/9");
}

TEST(PrefixTrieTest, ClearResets) {
  PrefixTrie<int> trie;
  trie.insert(*Prefix::parse("10.0.0.0/8"), 1);
  trie.clear();
  EXPECT_TRUE(trie.empty());
  EXPECT_EQ(trie.longest_match(*IPv4::parse("10.0.0.1")), nullptr);
}

/// Property test: the trie agrees with a naive reference implementation
/// on random prefix sets and random lookups.
class TriePropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TriePropertyTest, AgreesWithNaiveReference) {
  Rng rng(GetParam());
  PrefixTrie<int> trie;
  std::map<Prefix, int> reference;

  for (int i = 0; i < 300; ++i) {
    auto len = static_cast<std::uint8_t>(rng.uniform(4, 30));
    IPv4 base(static_cast<std::uint32_t>(
        rng.uniform(0, std::numeric_limits<std::uint32_t>::max())));
    Prefix prefix(base, len);
    trie.insert(prefix, i);
    reference[prefix] = i;
  }
  EXPECT_EQ(trie.size(), reference.size());

  auto naive_lookup = [&](IPv4 ip) -> std::optional<int> {
    std::optional<int> best;
    int best_len = -1;
    for (const auto& [prefix, value] : reference) {
      if (prefix.contains(ip) && prefix.length() > best_len) {
        best = value;
        best_len = prefix.length();
      }
    }
    return best;
  };

  for (int i = 0; i < 2000; ++i) {
    IPv4 ip(static_cast<std::uint32_t>(
        rng.uniform(0, std::numeric_limits<std::uint32_t>::max())));
    const int* got = trie.longest_match(ip);
    auto want = naive_lookup(ip);
    ASSERT_EQ(got != nullptr, want.has_value()) << ip.to_string();
    if (want) {
      EXPECT_EQ(*got, *want) << ip.to_string();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TriePropertyTest,
                         ::testing::Values(1, 2, 3, 42, 20210823));

}  // namespace
}  // namespace offnet::net
