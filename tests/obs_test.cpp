// Tests for the observability subsystem (src/obs): instrument
// semantics, registry reference stability, concurrent counting, the
// exporter's exact JSON shape, and the deterministic_json contract
// (everything but "timing" is stable output).

#include <gtest/gtest.h>

#include <stdexcept>
#include <thread>
#include <vector>

#include "obs/exporter.h"
#include "obs/metrics.h"
#include "obs/stage_timer.h"

namespace offnet::obs {
namespace {

TEST(CounterTest, AddsAndDefaultsToOne) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge g;
  g.set(10);
  g.add(-3);
  EXPECT_EQ(g.value(), 7);
  g.set(-5);
  EXPECT_EQ(g.value(), -5);
}

TEST(HistogramTest, BucketsByUpperBound) {
  Histogram h({1.0, 10.0, 100.0});
  h.observe(0.5);   // <= 1
  h.observe(1.0);   // <= 1 (bounds are inclusive)
  h.observe(2.0);   // <= 10
  h.observe(100.0); // <= 100
  h.observe(1e9);   // overflow
  EXPECT_EQ(h.bucket_counts(),
            (std::vector<std::uint64_t>{2, 1, 1, 1}));
  EXPECT_EQ(h.count(), 5u);
}

TEST(HistogramTest, RejectsBadBounds) {
  EXPECT_THROW(Histogram({}), std::invalid_argument);
  EXPECT_THROW(Histogram({1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(Histogram({2.0, 1.0}), std::invalid_argument);
}

TEST(RegistryTest, InstrumentsAreFoundOrCreatedAndStable) {
  Registry registry;
  Counter& a = registry.counter("x");
  Counter& b = registry.counter("x");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(registry.counter("x").value(), 3u);

  Histogram& h = registry.histogram("h", {1.0, 2.0});
  // Existing bounds win: a second caller with different bounds gets the
  // original instrument.
  Histogram& h2 = registry.histogram("h", {5.0});
  EXPECT_EQ(&h, &h2);
  EXPECT_EQ(h2.bounds(), (std::vector<double>{1.0, 2.0}));
}

TEST(RegistryTest, ConcurrentCounterAddsAreExact) {
  Registry registry;
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 10000;
  std::vector<std::thread> workers;
  for (int i = 0; i < kThreads; ++i) {
    workers.emplace_back([&registry] {
      Counter& c = registry.counter("shared");
      for (int n = 0; n < kAddsPerThread; ++n) c.add();
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(registry.counter("shared").value(),
            static_cast<std::uint64_t>(kThreads) * kAddsPerThread);
}

TEST(RegistryTest, TimingStatsAggregate) {
  Registry registry;
  registry.record_timing("stage", 2.0);
  registry.record_timing("stage", 1.0);
  registry.record_timing("stage", 4.0);
  RegistrySnapshot snap = registry.snapshot();
  ASSERT_EQ(snap.timings.count("stage"), 1u);
  const TimingStat& t = snap.timings.at("stage");
  EXPECT_EQ(t.calls, 3u);
  EXPECT_DOUBLE_EQ(t.total_seconds, 7.0);
  EXPECT_DOUBLE_EQ(t.min_seconds, 1.0);
  EXPECT_DOUBLE_EQ(t.max_seconds, 4.0);
}

TEST(StageTimerTest, RecordsOnceIntoTimingSection) {
  Registry registry;
  {
    StageTimer timer(registry, "scope");
    timer.stop();
    timer.stop();  // idempotent
  }  // destructor after stop() must not double-record
  RegistrySnapshot snap = registry.snapshot();
  ASSERT_EQ(snap.timings.count("scope"), 1u);
  EXPECT_EQ(snap.timings.at("scope").calls, 1u);
  EXPECT_GE(snap.timings.at("scope").total_seconds, 0.0);
}

TEST(StageTimerTest, NullRegistryIsANoOp) {
  StageTimer timer(nullptr, "nothing");
  timer.stop();  // must not crash
}

TEST(StopwatchTest, MonotonicNonNegative) {
  Stopwatch watch;
  double a = watch.seconds();
  double b = watch.seconds();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
  watch.restart();
  EXPECT_GE(watch.seconds(), 0.0);
}

TEST(ExporterTest, ExactJsonShape) {
  Registry registry;
  registry.counter("b").add(2);
  registry.counter("a").add(1);  // out of order: exporter sorts
  registry.gauge("level").set(-3);
  registry.histogram("sizes", {1.0, 10.0}).observe(5.0);
  const std::string expected =
      "{\n"
      "  \"counters\": {\n"
      "    \"a\": 1,\n"
      "    \"b\": 2\n"
      "  },\n"
      "  \"gauges\": {\n"
      "    \"level\": -3\n"
      "  },\n"
      "  \"histograms\": {\n"
      "    \"sizes\": {\"bounds\": [1, 10], \"buckets\": [0, 1, 0], "
      "\"count\": 1}\n"
      "  },\n"
      "  \"timing\": {}\n"
      "}\n";
  EXPECT_EQ(MetricsExporter::to_json(registry), expected);
}

TEST(ExporterTest, DeterministicJsonExcludesTiming) {
  Registry registry;
  registry.counter("hits").add(7);
  registry.record_timing("stage", 0.125);

  const std::string with_timing = MetricsExporter::to_json(registry);
  const std::string without = MetricsExporter::deterministic_json(registry);
  EXPECT_NE(with_timing.find("\"timing\""), std::string::npos);
  EXPECT_NE(with_timing.find("0.125"), std::string::npos);
  EXPECT_EQ(without.find("\"timing\""), std::string::npos);
  EXPECT_NE(without.find("\"hits\": 7"), std::string::npos);

  // Recording more timings must not change the deterministic view.
  registry.record_timing("stage", 1.0);
  registry.record_timing("other", 2.0);
  EXPECT_EQ(MetricsExporter::deterministic_json(registry), without);
}

TEST(ExporterTest, EscapesNamesAndRoundTripsDoubles) {
  Registry registry;
  registry.counter("odd\"name\\with\ttabs\n").add(1);
  registry.histogram("h", {0.1}).observe(0.05);
  const std::string json = MetricsExporter::to_json(registry);
  EXPECT_NE(json.find("\"odd\\\"name\\\\with\\ttabs\\n\""),
            std::string::npos);
  // 0.1 is not exactly representable; the exporter must print a form
  // that strtod round-trips (shortest %g), not a truncation.
  EXPECT_NE(json.find("\"bounds\": [0.1]"), std::string::npos);
}

TEST(RegistryTest, AbsorbRestoresAnEmptyRegistry) {
  Registry original;
  original.counter("hits").add(7);
  original.gauge("level").set(-3);
  Histogram& hist = original.histogram("sizes", {1.0, 10.0});
  hist.observe(0.5);
  hist.observe(5.0);
  hist.observe(100.0);
  original.record_timing("stage", 0.25);
  original.record_timing("stage", 0.75);

  Registry restored;
  restored.absorb(original.snapshot());
  // The restored registry renders identically, timing section included.
  EXPECT_EQ(MetricsExporter::to_json(restored),
            MetricsExporter::to_json(original));
}

TEST(RegistryTest, AbsorbAddsCountsAndAdoptsGaugeLevels) {
  Registry donor;
  donor.counter("hits").add(5);
  donor.gauge("level").set(9);
  donor.histogram("sizes", {1.0}).observe(0.5);

  Registry target;
  target.counter("hits").add(2);
  target.gauge("level").set(4);
  target.histogram("sizes", {1.0}).observe(100.0);
  target.absorb(donor.snapshot());

  EXPECT_EQ(target.counter("hits").value(), 7u);   // counters accumulate
  EXPECT_EQ(target.gauge("level").value(), 9);     // gauges are levels
  Histogram& hist = target.histogram("sizes", {1.0});
  EXPECT_EQ(hist.count(), 2u);
  EXPECT_EQ(hist.bucket_counts(), (std::vector<std::uint64_t>{1, 1}));
}

TEST(RegistryTest, AbsorbMergesTimingStats) {
  Registry donor;
  donor.record_timing("stage", 0.5);

  Registry target;
  target.record_timing("stage", 2.0);
  target.record_timing("stage", 1.0);
  target.absorb(donor.snapshot());

  const TimingStat stat = target.snapshot().timings.at("stage");
  EXPECT_EQ(stat.calls, 3u);
  EXPECT_DOUBLE_EQ(stat.total_seconds, 3.5);
  EXPECT_DOUBLE_EQ(stat.min_seconds, 0.5);
  EXPECT_DOUBLE_EQ(stat.max_seconds, 2.0);
}

TEST(RegistryTest, AbsorbRejectsHistogramBoundsMismatch) {
  Registry donor;
  donor.histogram("sizes", {1.0, 2.0}).observe(1.5);

  Registry target;
  target.histogram("sizes", {1.0, 3.0}).observe(1.5);
  EXPECT_THROW(target.absorb(donor.snapshot()), std::invalid_argument);
}

TEST(RegistryTest, HistogramAddBucketRejectsBadIndex) {
  Histogram hist({1.0, 2.0});
  hist.add_bucket(2, 4);  // the overflow bucket is valid
  EXPECT_EQ(hist.count(), 4u);
  EXPECT_THROW(hist.add_bucket(3, 1), std::out_of_range);
}

}  // namespace
}  // namespace offnet::obs
