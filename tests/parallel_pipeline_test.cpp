// Determinism and regression tests for the sharded pipeline: threaded
// runs must be bit-identical to serial runs, wide hypergiant lists must
// not overflow the per-certificate org mask, and the corpus stats must
// count IPs, not records.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "core/longitudinal.h"
#include "core/pipeline.h"
#include "test_world.h"

namespace offnet::core {
namespace {

void expect_identical(const SnapshotResult& a, const SnapshotResult& b) {
  EXPECT_EQ(a.snapshot, b.snapshot);
  EXPECT_EQ(a.stats.total_records, b.stats.total_records);
  EXPECT_EQ(a.stats.valid_cert_ips, b.stats.valid_cert_ips);
  EXPECT_EQ(a.stats.invalid_cert_ips, b.stats.invalid_cert_ips);
  EXPECT_EQ(a.stats.ases_with_certs, b.stats.ases_with_certs);
  EXPECT_EQ(a.stats.hg_cert_ips_onnet, b.stats.hg_cert_ips_onnet);
  EXPECT_EQ(a.stats.hg_cert_ips_offnet, b.stats.hg_cert_ips_offnet);
  EXPECT_EQ(a.stats.ases_with_any_hg, b.stats.ases_with_any_hg);
  ASSERT_EQ(a.per_hg.size(), b.per_hg.size());
  for (std::size_t h = 0; h < a.per_hg.size(); ++h) {
    const HgFootprint& x = a.per_hg[h];
    const HgFootprint& y = b.per_hg[h];
    EXPECT_EQ(x.name, y.name);
    EXPECT_EQ(x.onnet_ips, y.onnet_ips) << x.name;
    EXPECT_EQ(x.candidate_ips, y.candidate_ips) << x.name;
    EXPECT_EQ(x.confirmed_ips, y.confirmed_ips) << x.name;
    EXPECT_EQ(x.candidate_ases, y.candidate_ases) << x.name;
    EXPECT_EQ(x.confirmed_or_ases, y.confirmed_or_ases) << x.name;
    EXPECT_EQ(x.confirmed_and_ases, y.confirmed_and_ases) << x.name;
    EXPECT_EQ(x.confirmed_expired_ases, y.confirmed_expired_ases) << x.name;
    EXPECT_EQ(x.confirmed_expired_http_ases, y.confirmed_expired_http_ases)
        << x.name;
    EXPECT_EQ(x.candidate_ip_certs, y.candidate_ip_certs) << x.name;
    EXPECT_EQ(x.confirmed_ip_list, y.confirmed_ip_list) << x.name;
    EXPECT_EQ(x.tls_fingerprint.onnet_names, y.tls_fingerprint.onnet_names)
        << x.name;
    EXPECT_EQ(x.header_fingerprint.patterns, y.header_fingerprint.patterns)
        << x.name;
  }
}

SnapshotResult run_with_threads(const scan::ScanSnapshot& snap,
                                std::size_t threads) {
  const scan::World& world = testing::small_world();
  PipelineOptions options;
  options.n_threads = threads;
  OffnetPipeline pipeline(world.topology(), world.ip2as(), world.certs(),
                          world.roots(), standard_hg_inputs(), options);
  return pipeline.run(snap);
}

TEST(ParallelPipelineTest, BitIdenticalAcrossThreadCounts) {
  const scan::World& world = testing::small_world();
  auto snap =
      world.scan(net::snapshot_count() - 1, scan::ScannerKind::kRapid7);
  SnapshotResult serial = run_with_threads(snap, 1);
  expect_identical(serial, run_with_threads(snap, 2));
  expect_identical(serial, run_with_threads(snap, 8));
}

TEST(ParallelPipelineTest, LongitudinalMatchesSerialThroughNetflixEpisode) {
  const scan::World& world = testing::small_world();
  // Cover the 2018-04 Netflix expired-certificate episode, so the
  // cross-snapshot HTTP-only recovery state is actually exercised.
  const std::size_t episode =
      net::snapshot_index(net::YearMonth(2018, 4)).value();
  const std::size_t first = episode - 8;

  LongitudinalRunner serial_runner(world);
  auto serial = serial_runner.run(first, episode);

  PipelineOptions threaded;
  threaded.n_threads = 4;
  LongitudinalRunner parallel_runner(world, scan::ScannerKind::kRapid7,
                                     threaded);
  auto parallel = parallel_runner.run(first, episode);

  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    expect_identical(serial[i], parallel[i]);
  }

  // The recovery state survived the fan-out: the episode snapshot still
  // restores HTTP-only servers beyond the expired-certificate variant.
  const HgFootprint* nf = parallel.back().find("Netflix");
  ASSERT_NE(nf, nullptr);
  EXPECT_GT(nf->confirmed_expired_http_ases.size(),
            nf->confirmed_expired_ases.size());
}

TEST(ParallelPipelineTest, ParallelRunnerEmitsMissingPlaceholders) {
  const scan::World& world = testing::small_world();
  // Censys has no data at the start of the study (available 2019-10 on),
  // so these snapshots must come back as kMissing placeholders, in order.
  PipelineOptions threaded;
  threaded.n_threads = 4;
  LongitudinalRunner runner(world, scan::ScannerKind::kCensys, threaded);
  runner.set_include_missing(true);
  auto results = runner.run(0, 3);
  ASSERT_EQ(results.size(), 4u);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].snapshot, i);
    EXPECT_EQ(results[i].health, SnapshotHealth::kMissing);
  }
}

TEST(ParallelPipelineTest, RejectsOversizedHypergiantList) {
  const scan::World& world = testing::small_world();
  std::vector<HgInput> oversized;
  for (std::size_t i = 0; i < OffnetPipeline::kMaxHypergiants + 1; ++i) {
    oversized.push_back({"HG" + std::to_string(i), "hg" + std::to_string(i)});
  }
  EXPECT_THROW(OffnetPipeline(world.topology(), world.ip2as(), world.certs(),
                              world.roots(), oversized),
               std::invalid_argument);
  oversized.pop_back();  // exactly kMaxHypergiants is fine
  EXPECT_NO_THROW(OffnetPipeline(world.topology(), world.ip2as(),
                                 world.certs(), world.roots(), oversized));
}

TEST(ParallelPipelineTest, OrgMaskHandlesHypergiantsBeyondBit31) {
  // A 41-entry list puts Google at index 40: with the old 32-bit
  // `1u << h` mask this shifted past the word and lost (or UB'd) the
  // match. The footprint must equal a single-HG run.
  const scan::World& world = testing::small_world();
  auto snap =
      world.scan(net::snapshot_count() - 1, scan::ScannerKind::kRapid7);

  std::vector<HgInput> wide;
  for (std::size_t i = 0; i < 40; ++i) {
    wide.push_back({"Filler" + std::to_string(i),
                    "zz-no-such-org-" + std::to_string(i)});
  }
  wide.push_back({"Google", "google"});

  OffnetPipeline wide_pipeline(world.topology(), world.ip2as(), world.certs(),
                               world.roots(), wide);
  auto wide_result = wide_pipeline.run(snap);

  OffnetPipeline single_pipeline(world.topology(), world.ip2as(),
                                 world.certs(), world.roots(),
                                 {{"Google", "google"}});
  auto single_result = single_pipeline.run(snap);

  const HgFootprint* from_wide = wide_result.find("Google");
  const HgFootprint* from_single = single_result.find("Google");
  ASSERT_NE(from_wide, nullptr);
  ASSERT_NE(from_single, nullptr);
  EXPECT_GT(from_single->confirmed_or_ases.size(), 0u);
  EXPECT_EQ(from_wide->onnet_ips, from_single->onnet_ips);
  EXPECT_EQ(from_wide->candidate_ases, from_single->candidate_ases);
  EXPECT_EQ(from_wide->confirmed_or_ases, from_single->confirmed_or_ases);
  EXPECT_EQ(from_wide->confirmed_ip_list, from_single->confirmed_ip_list);
  for (std::size_t i = 0; i < 40; ++i) {
    EXPECT_EQ(wide_result.per_hg[i].candidate_ases.size(), 0u);
  }
}

TEST(ParallelPipelineTest, DuplicateIpRecordsCountIpsOnce) {
  const scan::World& world = testing::small_world();
  scan::ScanSnapshot snap = world.scan(10, scan::ScannerKind::kRapid7);
  SnapshotResult baseline = run_with_threads(snap, 1);

  // Feed every record twice: the IP-level corpus stats must not change.
  scan::ScanSnapshot doubled = snap;
  std::vector<scan::CertScanRecord> records = snap.certs();
  doubled.certs().insert(doubled.certs().end(), records.begin(),
                         records.end());
  SnapshotResult redundant = run_with_threads(doubled, 1);

  EXPECT_EQ(redundant.stats.total_records, baseline.stats.total_records);
  EXPECT_EQ(redundant.stats.valid_cert_ips, baseline.stats.valid_cert_ips);
  EXPECT_EQ(redundant.stats.invalid_cert_ips,
            baseline.stats.invalid_cert_ips);
  EXPECT_EQ(redundant.stats.total_records,
            redundant.stats.valid_cert_ips + redundant.stats.invalid_cert_ips);
  EXPECT_EQ(redundant.stats.hg_cert_ips_offnet,
            baseline.stats.hg_cert_ips_offnet);
  // And the dedup must hold under sharding too.
  expect_identical(redundant, run_with_threads(doubled, 8));
}

}  // namespace
}  // namespace offnet::core
