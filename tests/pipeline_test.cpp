#include <gtest/gtest.h>

#include <unordered_set>

#include "core/longitudinal.h"
#include "core/pipeline.h"
#include "net/table.h"
#include "test_world.h"

namespace offnet::core {
namespace {

class PipelineTest : public ::testing::Test {
 protected:
  const scan::World& world() { return testing::small_world(); }

  static std::size_t last_snapshot() { return net::snapshot_count() - 1; }

  const SnapshotResult& last_result() {
    static const SnapshotResult result = [this] {
      auto snap = world().scan(last_snapshot(), scan::ScannerKind::kRapid7);
      OffnetPipeline pipeline(world().topology(), world().ip2as(),
                              world().certs(), world().roots());
      return pipeline.run(snap);
    }();
    return result;
  }

  std::size_t truth_size(std::string_view name, std::size_t t) {
    int idx = hg::profile_index(world().profiles(), name);
    return world().plan().at(t, idx).confirmed.size();
  }
};

TEST_F(PipelineTest, StandardInputsMatchPaperList) {
  auto inputs = standard_hg_inputs();
  EXPECT_EQ(inputs.size(), 23u);
  for (const auto& input : inputs) {
    EXPECT_FALSE(input.keyword.empty());
    EXPECT_TRUE(net::icontains(input.name, input.keyword) ||
                input.name == "CDN77" || input.name == "Verizon")
        << input.name;
  }
}

TEST_F(PipelineTest, RecoversTop4FootprintsApproximately) {
  const auto& result = last_result();
  for (const char* name : {"Google", "Facebook", "Netflix", "Akamai"}) {
    const HgFootprint* fp = result.find(name);
    ASSERT_NE(fp, nullptr);
    double truth = static_cast<double>(truth_size(name, last_snapshot()));
    double measured = static_cast<double>(fp->confirmed_or_ases.size());
    EXPECT_GT(measured, truth * 0.80) << name;
    EXPECT_LT(measured, truth * 1.12) << name;
  }
}

TEST_F(PipelineTest, ConfirmedSubsetOfCandidates) {
  const auto& result = last_result();
  for (const HgFootprint& fp : result.per_hg) {
    std::unordered_set<topo::AsId> candidates(fp.candidate_ases.begin(),
                                              fp.candidate_ases.end());
    for (topo::AsId id : fp.confirmed_or_ases) {
      EXPECT_TRUE(candidates.contains(id)) << fp.name;
    }
    for (topo::AsId id : fp.confirmed_and_ases) {
      EXPECT_TRUE(candidates.contains(id)) << fp.name;
    }
    EXPECT_LE(fp.confirmed_and_ases.size(), fp.confirmed_or_ases.size());
  }
}

TEST_F(PipelineTest, NoOffnetHgsStayEmpty) {
  const auto& result = last_result();
  for (const char* name : {"Microsoft", "Hulu", "Disney", "Yahoo",
                           "Chinacache", "Fastly", "Cachefly", "Incapsula",
                           "CDN77", "Bamtech", "Highwinds"}) {
    const HgFootprint* fp = result.find(name);
    ASSERT_NE(fp, nullptr) << name;
    EXPECT_EQ(fp->confirmed_or_ases.size(), 0u) << name;
  }
}

TEST_F(PipelineTest, AppleIsServicePresentOnly) {
  const auto& result = last_result();
  const HgFootprint* apple = result.find("Apple");
  ASSERT_NE(apple, nullptr);
  EXPECT_EQ(apple->confirmed_or_ases.size(), 0u);
  EXPECT_GT(apple->candidate_ases.size(), 3u);
}

TEST_F(PipelineTest, MimicCertificatesFiltered) {
  // Background DV certificates with HG Organizations but foreign SANs
  // must never become candidates (§4.3).
  const auto& result = last_result();
  std::unordered_set<tls::CertId> candidate_certs;
  for (const HgFootprint& fp : result.per_hg) {
    for (const auto& [ip, cert] : fp.candidate_ip_certs) {
      candidate_certs.insert(cert);
    }
  }
  std::size_t mimic_in_corpus = 0;
  world().background().for_each(last_snapshot(), [&](const scan::BgServer& s) {
    const auto& cert = world().certs().get(s.cert);
    if (cert.dns_names.empty()) return;
    bool has_foreign_san = false;
    for (const auto& name : cert.dns_names) {
      if (name.find(".example") != std::string::npos) has_foreign_san = true;
    }
    if (!has_foreign_san) return;
    // Any background certificate carrying an HG-keyword Organization and
    // a foreign SAN is a mimic or shared cert; the containment rule must
    // exclude it from every candidate set.
    for (const auto& input : standard_hg_inputs()) {
      if (net::icontains(cert.subject.organization, input.keyword)) {
        ++mimic_in_corpus;
        EXPECT_FALSE(candidate_certs.contains(s.cert))
            << cert.subject.organization;
        return;
      }
    }
  });
  EXPECT_GT(mimic_in_corpus, 10u);  // the hazard actually exists
}

TEST_F(PipelineTest, SubsetRuleAblationAddsFalsePositives) {
  auto snap = world().scan(last_snapshot(), scan::ScannerKind::kRapid7);
  PipelineOptions ablated;
  ablated.disable_subset_rule = true;
  OffnetPipeline pipeline(world().topology(), world().ip2as(),
                          world().certs(), world().roots(),
                          standard_hg_inputs(), ablated);
  auto result = pipeline.run(snap);
  const auto& baseline = last_result();
  // Without the containment rule, Cloudflare's universal-SSL customers
  // flood the candidate set.
  EXPECT_GT(result.find("Cloudflare")->candidate_ases.size(),
            baseline.find("Cloudflare")->candidate_ases.size() * 2);
  // And mimics leak into every HG's candidates.
  std::size_t ablated_total = 0;
  std::size_t baseline_total = 0;
  for (const auto& fp : result.per_hg) ablated_total += fp.candidate_ases.size();
  for (const auto& fp : baseline.per_hg) {
    baseline_total += fp.candidate_ases.size();
  }
  EXPECT_GT(ablated_total, baseline_total);
}

TEST_F(PipelineTest, CloudflareSslFilterMitigation) {
  auto snap = world().scan(last_snapshot(), scan::ScannerKind::kRapid7);
  PipelineOptions mitigated;
  mitigated.apply_cloudflare_ssl_filter = true;
  OffnetPipeline pipeline(world().topology(), world().ip2as(),
                          world().certs(), world().roots(),
                          standard_hg_inputs(), mitigated);
  auto result = pipeline.run(snap);
  EXPECT_EQ(result.find("Cloudflare")->confirmed_or_ases.size(), 0u);
  // Other HGs unaffected.
  EXPECT_NEAR(
      static_cast<double>(result.find("Google")->confirmed_or_ases.size()),
      static_cast<double>(last_result().find("Google")->confirmed_or_ases.size()),
      2.0);
}

TEST_F(PipelineTest, CloudflareMisidentifiedWithoutMitigation) {
  // §6.1: Cloudflare has no off-nets, yet the methodology reports some.
  const auto& result = last_result();
  EXPECT_GT(result.find("Cloudflare")->confirmed_or_ases.size(), 0u);
}

TEST_F(PipelineTest, NetflixVariantsNestDuringEpisode) {
  auto t = net::snapshot_index(net::YearMonth(2018, 4)).value();
  auto snap = world().scan(t, scan::ScannerKind::kRapid7);
  OffnetPipeline pipeline(world().topology(), world().ip2as(),
                          world().certs(), world().roots());
  auto result = pipeline.run(snap);
  const HgFootprint* nf = result.find("Netflix");
  ASSERT_NE(nf, nullptr);
  // initial <= w/expired; the HTTP variant needs runner state, so here it
  // equals the expired variant.
  EXPECT_LT(nf->confirmed_or_ases.size(), nf->confirmed_expired_ases.size());
  std::unordered_set<topo::AsId> expired(nf->confirmed_expired_ases.begin(),
                                         nf->confirmed_expired_ases.end());
  for (topo::AsId id : nf->confirmed_or_ases) {
    EXPECT_TRUE(expired.contains(id));
  }
}

TEST_F(PipelineTest, LongitudinalRunnerRestoresHttpOnlyServers) {
  core::LongitudinalRunner runner(world());
  auto episode_t = net::snapshot_index(net::YearMonth(2018, 4)).value();
  auto results = runner.run(0, episode_t);
  const auto& at_episode = results.back();
  const HgFootprint* nf = at_episode.find("Netflix");
  ASSERT_NE(nf, nullptr);
  EXPECT_GT(nf->confirmed_expired_http_ases.size(),
            nf->confirmed_expired_ases.size());
}

TEST_F(PipelineTest, HeaderFingerprintsLearned) {
  const auto& result = last_result();
  // Learned fingerprints must match the HG's own server responses.
  const HgFootprint* google = result.find("Google");
  ASSERT_FALSE(google->header_fingerprint.empty());
  http::HeaderMap gws;
  gws.add("Server", "gws");
  EXPECT_TRUE(google->header_fingerprint.matches(gws));
  // Netflix has no learnable fingerprint (login-only headers).
  EXPECT_TRUE(result.find("Netflix")->header_fingerprint.empty());
  // Hulu likewise -> zero confirmations.
  EXPECT_TRUE(result.find("Hulu")->header_fingerprint.empty());
}

TEST_F(PipelineTest, TlsFingerprintContainsServingDomains) {
  const auto& result = last_result();
  const auto& fp = result.find("Google")->tls_fingerprint;
  bool has_google_name = false;
  for (const auto& name : fp.onnet_names) {
    if (name.find("google") != std::string::npos) has_google_name = true;
  }
  EXPECT_TRUE(has_google_name);
  EXPECT_GT(fp.onnet_names.size(), 2u);
}

TEST_F(PipelineTest, StatsConsistent) {
  const auto& result = last_result();
  EXPECT_EQ(result.stats.total_records,
            result.stats.valid_cert_ips + result.stats.invalid_cert_ips);
  EXPECT_GT(result.stats.ases_with_certs, 100u);
  EXPECT_GT(result.stats.ases_with_any_hg, 0u);
  EXPECT_GT(result.stats.hg_cert_ips_onnet, 0u);
  EXPECT_GT(result.stats.hg_cert_ips_offnet, 0u);
  // HG IPs are a small share of the corpus (Fig. 2: a few percent).
  EXPECT_LT(result.stats.hg_cert_ips_offnet + result.stats.hg_cert_ips_onnet,
            result.stats.total_records / 2);
}

TEST_F(PipelineTest, DeterministicAcrossRuns) {
  auto snap = world().scan(10, scan::ScannerKind::kRapid7);
  OffnetPipeline pipeline(world().topology(), world().ip2as(),
                          world().certs(), world().roots());
  auto a = pipeline.run(snap);
  auto b = pipeline.run(snap);
  ASSERT_EQ(a.per_hg.size(), b.per_hg.size());
  for (std::size_t h = 0; h < a.per_hg.size(); ++h) {
    EXPECT_EQ(a.per_hg[h].candidate_ases, b.per_hg[h].candidate_ases);
    EXPECT_EQ(a.per_hg[h].confirmed_or_ases, b.per_hg[h].confirmed_or_ases);
  }
}

TEST(TlsFingerprintTest, ContainmentRule) {
  TlsFingerprint fp;
  fp.keyword = "google";
  fp.onnet_names = {"*.google.com", "*.googlevideo.com"};
  tls::Certificate covered;
  covered.subject.organization = "Google LLC";
  covered.dns_names = {"*.google.com"};
  tls::Certificate mixed;
  mixed.subject.organization = "Google LLC";
  mixed.dns_names = {"*.google.com", "partner.example"};
  tls::Certificate empty;
  empty.subject.organization = "Google LLC";
  EXPECT_TRUE(fp.organization_matches(covered));
  EXPECT_TRUE(fp.covers_all_names(covered));
  EXPECT_FALSE(fp.covers_all_names(mixed));
  EXPECT_FALSE(fp.covers_all_names(empty));
}

TEST(TlsFingerprintTest, CloudflareCustomerNamePattern) {
  EXPECT_TRUE(is_cloudflare_customer_name("sni12345.cloudflaressl.com"));
  EXPECT_TRUE(is_cloudflare_customer_name("ssl7.cloudflaressl.com"));
  EXPECT_TRUE(is_cloudflare_customer_name("sni.cloudflaressl.com"));
  EXPECT_FALSE(is_cloudflare_customer_name("www.cloudflaressl.com"));
  EXPECT_FALSE(is_cloudflare_customer_name("sni1.cloudflare.com"));
  EXPECT_FALSE(is_cloudflare_customer_name("sni1x.cloudflaressl.com"));

  tls::Certificate dedicated;
  dedicated.dns_names = {"sni100.cloudflaressl.com"};
  tls::Certificate free_cert;
  free_cert.dns_names = {"sni100.cloudflaressl.com", "www.shop.example"};
  EXPECT_TRUE(all_cloudflare_customer_names(dedicated));
  EXPECT_FALSE(all_cloudflare_customer_names(free_cert));
}

}  // namespace
}  // namespace offnet::core
