#include <gtest/gtest.h>

#include <unordered_map>
#include <unordered_set>

#include "scan/world.h"
#include "test_world.h"
#include "tls/validator.h"

namespace offnet::scan {
namespace {

class ScanTest : public ::testing::Test {
 protected:
  const World& world() { return testing::small_world(); }
};

TEST_F(ScanTest, ScannerAvailabilityWindows) {
  const World& w = world();
  EXPECT_TRUE(w.scanner_available(0, ScannerKind::kRapid7));
  EXPECT_TRUE(w.scanner_available(30, ScannerKind::kRapid7));
  EXPECT_FALSE(w.scanner_available(0, ScannerKind::kCensys));
  EXPECT_FALSE(w.scanner_available(23, ScannerKind::kCensys));
  EXPECT_TRUE(w.scanner_available(24, ScannerKind::kCensys));  // 2019-10
  EXPECT_TRUE(w.scanner_available(30, ScannerKind::kCensys));
  EXPECT_FALSE(w.scanner_available(0, ScannerKind::kCertigo));
  EXPECT_TRUE(w.scanner_available(24, ScannerKind::kCertigo));
  EXPECT_FALSE(w.scanner_available(30, ScannerKind::kCertigo));
}

TEST_F(ScanTest, HeaderCorpusAvailability) {
  const World& w = world();
  // HTTP headers exist from the start; HTTPS headers only from mid-2016
  // for Rapid7 (§6.2 / Fig. 4 note).
  auto early = w.scan(0, ScannerKind::kRapid7);
  EXPECT_TRUE(early.has_http_headers());
  EXPECT_FALSE(early.has_https_headers());
  auto summer16 = net::snapshot_index(net::YearMonth(2016, 7)).value();
  auto mid = w.scan(summer16, ScannerKind::kRapid7);
  EXPECT_TRUE(mid.has_https_headers());
  auto censys = w.scan(24, ScannerKind::kCensys);
  EXPECT_TRUE(censys.has_https_headers());
}

TEST_F(ScanTest, CorpusGrowsOverStudy) {
  const World& w = world();
  auto first = w.scan(0, ScannerKind::kRapid7);
  auto last = w.scan(30, ScannerKind::kRapid7);
  // Fig. 2: the raw corpus roughly quadruples (10M -> 40M IPs).
  EXPECT_GT(last.certs().size(), first.certs().size() * 2.5);
  EXPECT_LT(last.certs().size(), first.certs().size() * 6.0);
}

TEST_F(ScanTest, CertigoSeesMoreThanRapid7) {
  const World& w = world();
  std::size_t t = certigo_snapshot();
  auto r7 = w.scan(t, ScannerKind::kRapid7);
  auto ac = w.scan(t, ScannerKind::kCertigo);
  // §5: the slow active scan found ~20% more addresses.
  EXPECT_GT(ac.certs().size(), r7.certs().size() * 1.05);
  EXPECT_LT(ac.certs().size(), r7.certs().size() * 1.35);
}

TEST_F(ScanTest, ScannersShareMostOfTheCorpus) {
  const World& w = world();
  std::size_t t = certigo_snapshot();
  auto r7 = w.scan(t, ScannerKind::kRapid7);
  auto cs = w.scan(t, ScannerKind::kCensys);
  std::unordered_set<std::uint32_t> r7_ips;
  for (const auto& rec : r7.certs()) r7_ips.insert(rec.ip.value());
  std::size_t shared = 0;
  for (const auto& rec : cs.certs()) {
    if (r7_ips.contains(rec.ip.value())) ++shared;
  }
  EXPECT_GT(static_cast<double>(shared) / cs.certs().size(), 0.6);
}

TEST_F(ScanTest, InvalidCertificateShareAboutOneThird) {
  const World& w = world();
  tls::CertValidator validator(w.certs(), w.roots());
  auto snap = w.scan(15, ScannerKind::kRapid7);
  std::size_t invalid = 0;
  for (const auto& rec : snap.certs()) {
    if (validator.validate(rec.cert, snap.time()) !=
        tls::CertStatus::kValid) {
      ++invalid;
    }
  }
  double share = static_cast<double>(invalid) / snap.certs().size();
  // §4.1: "more than one third of the hosts returned invalid
  // certificates".
  EXPECT_GT(share, 0.25);
  EXPECT_LT(share, 0.45);
}

TEST_F(ScanTest, BackgroundDeterministic) {
  const World& w = world();
  std::vector<BgServer> a;
  std::vector<BgServer> b;
  w.background().for_each(9, [&](const BgServer& s) { a.push_back(s); });
  w.background().for_each(9, [&](const BgServer& s) { b.push_back(s); });
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].ip, b[i].ip);
    EXPECT_EQ(a[i].cert, b[i].cert);
  }
}

TEST_F(ScanTest, BackgroundServersStableAcrossSnapshots) {
  const World& w = world();
  std::unordered_map<std::uint32_t, tls::CertId> early;
  w.background().for_each(0, [&](const BgServer& s) {
    early.emplace(s.ip.value(), s.cert);
  });
  std::size_t shared = 0;
  std::size_t same_cert = 0;
  w.background().for_each(30, [&](const BgServer& s) {
    auto it = early.find(s.ip.value());
    if (it == early.end()) return;
    ++shared;
    if (it->second == s.cert) ++same_cert;
  });
  EXPECT_GT(shared, early.size() / 2);
  // Same IP => same certificate, except for rare within-prefix hash
  // collisions between server slots.
  EXPECT_GE(static_cast<double>(same_cert), shared * 0.99);
}

TEST_F(ScanTest, HttpOnlyServersAppearDuringNetflixEpisode) {
  const World& w = world();
  auto t = net::snapshot_index(net::YearMonth(2018, 4)).value();
  auto snap = w.scan(t, ScannerKind::kRapid7);
  EXPECT_GT(snap.http_only_count(), 0u);
}

TEST_F(ScanTest, ScanSnapshotLookupApi) {
  const World& w = world();
  auto snap = w.scan(30, ScannerKind::kRapid7);
  // Find some fleet IP with headers.
  bool found = false;
  for (const auto& rec : snap.certs()) {
    if (const http::HeaderMap* headers = snap.https_headers(rec.ip)) {
      EXPECT_FALSE(headers->empty());
      found = true;
      break;
    }
  }
  EXPECT_TRUE(found);
  EXPECT_EQ(snap.https_headers(net::IPv4(1)), nullptr);
  EXPECT_EQ(snap.scanner(), ScannerKind::kRapid7);
  EXPECT_EQ(snap.snapshot_index(), 30u);
}

TEST_F(ScanTest, ReportScale) {
  EXPECT_DOUBLE_EQ(world().report_scale(),
                   1.0 / world().config().background_scale);
}

}  // namespace
}  // namespace offnet::scan
