#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "scan/sni.h"
#include "test_world.h"

namespace offnet::scan {
namespace {

class SniTest : public ::testing::Test {
 protected:
  const World& world() { return testing::small_world(); }
  static std::size_t last() { return net::snapshot_count() - 1; }
};

TEST_F(SniTest, ProbeHostnamesCoverEveryHg) {
  auto hostnames = sni_probe_hostnames(world().profiles());
  EXPECT_GT(hostnames.size(), 60u);
  bool has_google = false;
  for (const auto& h : hostnames) {
    if (h == "www.googlevideo.com") has_google = true;
  }
  EXPECT_TRUE(has_google);
}

TEST_F(SniTest, OffnetsAnswerTheirOwnDomains) {
  SniScanner scanner(world().fleet(), world().topology());
  auto records = scanner.scan_sni(last(), "www.google.com");
  EXPECT_GT(records.size(), 100u);
  // Every returned certificate covers the probed hostname.
  for (const auto& rec : records) {
    const tls::Certificate& cert = world().certs().get(rec.cert);
    EXPECT_TRUE(tls::any_dns_name_matches(cert.dns_names, "www.google.com"));
  }
}

TEST_F(SniTest, ForeignDomainsFail) {
  SniScanner scanner(world().fleet(), world().topology());
  auto records = scanner.scan_sni(last(), "www.unrelated-site.example");
  EXPECT_TRUE(records.empty());
}

TEST_F(SniTest, AkamaiServesItsCustomersDomains) {
  // §5: Akamai edges validly answer for Apple/LinkedIn/Disney domains.
  SniScanner scanner(world().fleet(), world().topology());
  auto apple = scanner.scan_sni(last(), "www.apple.com");
  int ak = hg::profile_index(world().profiles(), "Akamai");
  std::size_t on_akamai = 0;
  std::unordered_set<std::uint32_t> akamai_ips;
  for (const auto& rec : world().fleet().snapshot_fleet(last())) {
    if (rec.hg == ak) akamai_ips.insert(rec.ip.value());
  }
  for (const auto& rec : apple) {
    if (akamai_ips.contains(rec.ip.value())) ++on_akamai;
  }
  EXPECT_GT(on_akamai, 100u);
}

TEST_F(SniTest, AugmentSkipsPresentIps) {
  auto snapshot = world().scan(last(), ScannerKind::kRapid7);
  std::size_t before = snapshot.certs().size();
  SniScanner scanner(world().fleet(), world().topology());
  std::vector<std::string> hostnames = {"www.google.com"};
  std::size_t added = scanner.augment(snapshot, hostnames);
  EXPECT_EQ(snapshot.certs().size(), before + added);
  // Most Google servers are already in the default-cert corpus; only the
  // scan-loss stragglers get added.
  EXPECT_LT(added, 600u);
}

TEST_F(SniTest, SniSweepDefeatsNullCertCountermeasure) {
  scan::WorldConfig config;
  config.topology_scale = 0.02;
  config.background_scale = 0.0005;
  config.countermeasures.null_default_certs = true;
  scan::World hidden(config);
  std::size_t t = last();

  auto snapshot = hidden.scan(t, ScannerKind::kRapid7);
  core::OffnetPipeline pipeline(hidden.topology(), hidden.ip2as(),
                                hidden.certs(), hidden.roots());
  auto blinded = pipeline.run(snapshot);
  EXPECT_EQ(blinded.find("Google")->confirmed_or_ases.size(), 0u);

  SniScanner scanner(hidden.fleet(), hidden.topology());
  auto hostnames = sni_probe_hostnames(hidden.profiles());
  auto augmented = hidden.scan(t, ScannerKind::kRapid7);
  EXPECT_GT(scanner.augment(augmented, hostnames), 0u);
  auto recovered = pipeline.run(augmented);
  int g = hg::profile_index(hidden.profiles(), "Google");
  std::size_t truth = hidden.plan().at(t, g).confirmed.size();
  EXPECT_GT(recovered.find("Google")->confirmed_or_ases.size(),
            truth * 0.8);
}

}  // namespace
}  // namespace offnet::scan
