// The service layer (DESIGN.md §11), bottom-up: the tolerant request
// parser, the RCU-style VersionedStore (readers pin version N while a
// publisher swaps in N+1 — the concurrency half runs under TSan via the
// OFFNET_SANITIZE=thread build), the bounded AdmissionQueue, the
// ServiceSnapshot digest and its validate-before-swap contract, and the
// full Server over real unix-domain sockets: overload shed, per-request
// deadlines, malformed input survival, fault-injected reloads, and
// graceful drain with zero lost in-flight responses.
#include <gtest/gtest.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/checkpoint.h"
#include "core/fault.h"
#include "core/pinned.h"
#include "net/date.h"
#include "obs/metrics.h"
#include "svc/admission.h"
#include "svc/client.h"
#include "svc/protocol.h"
#include "svc/server.h"
#include "svc/service_snapshot.h"
#include "svc/snapshot_store.h"
#include "svc/socket.h"

namespace {

namespace fs = std::filesystem;

using offnet::core::Checkpoint;
using offnet::core::FaultInjector;
using offnet::core::HgFootprint;
using offnet::core::Pinned;
using offnet::core::RunState;
using offnet::core::SnapshotHealth;
using offnet::core::SnapshotResult;
using offnet::svc::Admitted;
using offnet::svc::AdmissionQueue;
using offnet::svc::Client;
using offnet::svc::Endpoint;
using offnet::svc::ParseResult;
using offnet::svc::Server;
using offnet::svc::ServerOptions;
using offnet::svc::ServiceSnapshot;
using offnet::svc::SnapshotValidationError;
using offnet::svc::VersionedStore;

namespace metric_names = offnet::svc::metric_names;
namespace obs = offnet::obs;

std::string temp_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

void sleep_ms(int ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

// ---------------------------------------------------------------------------
// Synthetic pipeline results: enough of a SnapshotResult to exercise the
// digest, the wire protocol, and checkpoint-backed reloads without
// running the real pipeline.

HgFootprint make_footprint(std::string name, std::size_t onnet,
                           std::size_t candidates, std::size_t confirmed,
                           std::vector<offnet::topo::AsId> candidate_ases,
                           std::vector<offnet::topo::AsId> confirmed_ases) {
  HgFootprint fp;
  fp.name = std::move(name);
  fp.onnet_ips = onnet;
  fp.candidate_ips = candidates;
  fp.confirmed_ips = confirmed;
  fp.candidate_ases = std::move(candidate_ases);
  fp.confirmed_or_ases = std::move(confirmed_ases);
  return fp;
}

/// Two usable months plus one corrupt placeholder. `scale` perturbs the
/// counts so two generations of the "same" data are distinguishable on
/// the wire (the reload tests serve A and B alternately).
std::vector<SnapshotResult> make_results(std::size_t scale = 1) {
  std::vector<SnapshotResult> results;
  for (std::size_t t = 0; t < 2; ++t) {
    SnapshotResult result;
    result.snapshot = t;
    result.health = SnapshotHealth::kComplete;
    result.per_hg.push_back(make_footprint("google", 100 * scale, 10 * scale,
                                           8 * scale, {1, 2, 3}, {1, 3}));
    result.per_hg.push_back(make_footprint("netflix", 50 * scale, 5 * scale,
                                           2 * scale, {2, 4}, {2}));
    results.push_back(std::move(result));
  }
  SnapshotResult corrupt;
  corrupt.snapshot = 2;
  corrupt.health = SnapshotHealth::kCorrupt;
  results.push_back(std::move(corrupt));
  return results;
}

std::shared_ptr<const ServiceSnapshot> make_snapshot(std::size_t scale = 1) {
  return ServiceSnapshot::from_results("synthetic",
                                       make_results(scale));
}

/// Publishes `results` as a checkpoint file offnetd-style reloads can
/// consume (integrity-checked, digest comparison skipped on load).
std::string write_checkpoint(const std::string& dir, const std::string& name,
                             const std::vector<SnapshotResult>& results) {
  RunState state;
  state.results = results;
  const std::string path = dir + "/" + name;
  Checkpoint::save(path, state, "svc-test");
  return path;
}

std::string month_label(std::size_t index) {
  return offnet::net::study_snapshots()[index].to_string();
}

/// The exact FOOTPRINT response for make_results(scale)'s google cell.
std::string google_footprint_response(std::size_t scale) {
  return "OK month=" + month_label(0) + " hg=google onnet_ips=" +
         std::to_string(100 * scale) + " candidate_ips=" +
         std::to_string(10 * scale) + " confirmed_ips=" +
         std::to_string(8 * scale) + " candidate_ases=3 confirmed_ases=2";
}

// ---------------------------------------------------------------------------
// Protocol

TEST(Protocol, ParsesVerbCaseInsensitively) {
  ParseResult parsed = offnet::svc::parse_request("ping");
  ASSERT_TRUE(parsed.request.has_value());
  EXPECT_EQ(parsed.request->verb, "PING");
  EXPECT_TRUE(parsed.request->args.empty());
  EXPECT_EQ(parsed.request->deadline_ms, -1);
}

TEST(Protocol, ParsesDeadlineTokenAndArgs) {
  ParseResult parsed =
      offnet::svc::parse_request("T=250 footprint 2013-10 google");
  ASSERT_TRUE(parsed.request.has_value());
  EXPECT_EQ(parsed.request->deadline_ms, 250);
  EXPECT_EQ(parsed.request->verb, "FOOTPRINT");
  EXPECT_EQ(parsed.request->args,
            (std::vector<std::string>{"2013-10", "google"}));
}

TEST(Protocol, ToleratesCrlfAndExtraWhitespace) {
  ParseResult parsed = offnet::svc::parse_request("  PING \t \r");
  ASSERT_TRUE(parsed.request.has_value());
  EXPECT_EQ(parsed.request->verb, "PING");
}

TEST(Protocol, RejectsBadDeadlines) {
  for (const char* line : {"T=0 PING", "T=-5 PING", "T=abc PING",
                           "T=9999999999 PING", "T=250"}) {
    ParseResult parsed = offnet::svc::parse_request(line);
    EXPECT_FALSE(parsed.request.has_value()) << line;
    EXPECT_FALSE(parsed.error.empty()) << line;
  }
}

TEST(Protocol, RejectsNonPrintableBytesWithHex) {
  ParseResult parsed = offnet::svc::parse_request("PI\x01NG");
  ASSERT_FALSE(parsed.request.has_value());
  EXPECT_NE(parsed.error.find("0x01"), std::string::npos);
}

TEST(Protocol, RejectsEmptyRequest) {
  EXPECT_FALSE(offnet::svc::parse_request("").request.has_value());
  EXPECT_FALSE(offnet::svc::parse_request("   \r").request.has_value());
}

TEST(Protocol, ResponseFraming) {
  EXPECT_EQ(offnet::svc::ok_response("pong"), "OK pong\n");
  EXPECT_EQ(offnet::svc::ok_response(""), "OK\n");
  EXPECT_EQ(offnet::svc::err_response("why"), "ERR why\n");
  EXPECT_EQ(offnet::svc::busy_response("queue-full"), "BUSY queue-full\n");
}

// ---------------------------------------------------------------------------
// VersionedStore: the RCU-style pinning idiom.

struct Payload {
  std::uint64_t tag = 0;
  std::vector<std::uint64_t> data;
};

std::shared_ptr<const Payload> make_payload(std::uint64_t tag) {
  auto payload = std::make_shared<Payload>();
  payload->tag = tag;
  payload->data.assign(64, tag);
  return payload;
}

TEST(VersionedStore, EmptyUntilFirstPublish) {
  VersionedStore<Payload> store;
  EXPECT_EQ(store.version(), 0u);
  Pinned<Payload> pin = store.pin();
  EXPECT_FALSE(static_cast<bool>(pin));
  EXPECT_EQ(pin.version(), 0u);
}

TEST(VersionedStore, PinHoldsItsVersionAcrossPublish) {
  VersionedStore<Payload> store;
  EXPECT_EQ(store.publish(make_payload(7)), 1u);
  Pinned<Payload> old_pin = store.pin();
  EXPECT_EQ(store.publish(make_payload(8)), 2u);
  // The in-flight reader still sees version 1's data, untouched.
  EXPECT_EQ(old_pin.version(), 1u);
  EXPECT_EQ(old_pin->tag, 7u);
  Pinned<Payload> new_pin = store.pin();
  EXPECT_EQ(new_pin.version(), 2u);
  EXPECT_EQ(new_pin->tag, 8u);
}

// The satellite-3 torture: readers pin while a publisher swaps, under
// TSan when the sanitizer build runs this binary. Every pin must be
// internally consistent — a version's payload is never seen mid-change.
TEST(VersionedStore, ConcurrentPinAndPublishStayConsistent) {
  VersionedStore<Payload> store;
  store.publish(make_payload(1));
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> inconsistencies{0};

  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        Pinned<Payload> pin = store.pin();
        for (std::uint64_t value : pin->data) {
          if (value != pin->tag) {
            inconsistencies.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (std::uint64_t tag = 2; tag <= 200; ++tag) {
    store.publish(make_payload(tag));
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& reader : readers) reader.join();

  EXPECT_EQ(inconsistencies.load(), 0u);
  EXPECT_EQ(store.version(), 200u);
  EXPECT_EQ(store.pin()->tag, 200u);
}

// ---------------------------------------------------------------------------
// AdmissionQueue

TEST(AdmissionQueueTest, TryPushRefusesWhenFullAndLeavesItemAlone) {
  AdmissionQueue queue(2);
  Admitted a;
  a.accept_ns = 11;
  Admitted b;
  b.accept_ns = 22;
  Admitted c;
  c.accept_ns = 33;
  EXPECT_TRUE(queue.try_push(a));
  EXPECT_TRUE(queue.try_push(b));
  EXPECT_FALSE(queue.try_push(c));
  // The caller still owns the rejected connection (it must shed it with
  // a BUSY line, which needs the fd and the timestamp intact).
  EXPECT_EQ(c.accept_ns, 33);
  EXPECT_EQ(queue.size(), 2u);
}

TEST(AdmissionQueueTest, CloseDrainsQueuedItemsThenReportsEmpty) {
  AdmissionQueue queue(4);
  Admitted a;
  a.accept_ns = 1;
  Admitted b;
  b.accept_ns = 2;
  ASSERT_TRUE(queue.try_push(a));
  ASSERT_TRUE(queue.try_push(b));
  queue.close();
  Admitted rejected;
  EXPECT_FALSE(queue.try_push(rejected));
  // Drain semantics: admitted work is finished, not dropped.
  auto first = queue.pop();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->accept_ns, 1);
  auto second = queue.pop();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->accept_ns, 2);
  EXPECT_FALSE(queue.pop().has_value());
}

TEST(AdmissionQueueTest, PopWaitsForAPush) {
  AdmissionQueue queue(1);
  std::optional<Admitted> popped;
  std::thread worker([&] { popped = queue.pop(); });
  sleep_ms(30);
  Admitted item;
  item.accept_ns = 99;
  EXPECT_TRUE(queue.try_push(item));
  worker.join();
  ASSERT_TRUE(popped.has_value());
  EXPECT_EQ(popped->accept_ns, 99);
}

TEST(AdmissionQueueTest, CloseWakesBlockedWorkers) {
  AdmissionQueue queue(1);
  std::atomic<int> finished{0};
  std::vector<std::thread> workers;
  for (int w = 0; w < 3; ++w) {
    workers.emplace_back([&] {
      EXPECT_FALSE(queue.pop().has_value());
      finished.fetch_add(1);
    });
  }
  sleep_ms(30);
  queue.close();
  for (std::thread& worker : workers) worker.join();
  EXPECT_EQ(finished.load(), 3);
}

// ---------------------------------------------------------------------------
// ServiceSnapshot

TEST(ServiceSnapshotTest, FromResultsBuildsQueryableDigest) {
  auto snapshot = make_snapshot();
  EXPECT_EQ(snapshot->validate(), "");
  EXPECT_EQ(snapshot->months().size(), 3u);
  EXPECT_EQ(snapshot->usable_months(), 2u);
  EXPECT_EQ(snapshot->hypergiants(),
            (std::vector<std::string>{"google", "netflix"}));

  const std::size_t month =
      snapshot->month_index(offnet::net::study_snapshots()[0]);
  ASSERT_NE(month, ServiceSnapshot::npos);
  const std::size_t google = snapshot->hypergiant_index("google");
  ASSERT_NE(google, ServiceSnapshot::npos);
  const ServiceSnapshot::Cell* cell = snapshot->cell(month, google);
  ASSERT_NE(cell, nullptr);
  EXPECT_EQ(cell->onnet_ips, 100u);
  EXPECT_EQ(cell->candidate_ips, 10u);
  EXPECT_EQ(cell->confirmed_ips, 8u);
  EXPECT_EQ(cell->confirmed_ases, (std::vector<std::uint32_t>{1, 3}));

  // Co-hosting: AS 2 hosts only netflix, AS 3 only google, AS 99 nobody.
  EXPECT_EQ(snapshot->hypergiants_in_as(month, 2),
            (std::vector<std::string>{"netflix"}));
  EXPECT_EQ(snapshot->hypergiants_in_as(month, 3),
            (std::vector<std::string>{"google"}));
  EXPECT_TRUE(snapshot->hypergiants_in_as(month, 99).empty());

  // The corrupt placeholder month answers no cells.
  EXPECT_EQ(snapshot->cell(2, google), nullptr);
  EXPECT_EQ(snapshot->hypergiant_index("amazon"), ServiceSnapshot::npos);
}

TEST(ServiceSnapshotTest, ValidateRejectsStructuralDamage) {
  EXPECT_NE(ServiceSnapshot::from_results("x", {})->validate(), "");

  std::vector<SnapshotResult> no_usable(1);
  no_usable[0].health = SnapshotHealth::kCorrupt;
  EXPECT_NE(ServiceSnapshot::from_results("x", no_usable)->validate().find(
                "usable"),
            std::string::npos);

  std::vector<SnapshotResult> duplicate = make_results();
  duplicate[0].per_hg[1].name = "google";
  duplicate[1].per_hg[1].name = "google";
  EXPECT_NE(ServiceSnapshot::from_results("x", duplicate)->validate().find(
                "duplicate"),
            std::string::npos);

  std::vector<SnapshotResult> spacey = make_results();
  spacey[0].per_hg[0].name = "goo gle";
  spacey[1].per_hg[0].name = "goo gle";
  EXPECT_NE(ServiceSnapshot::from_results("x", spacey)->validate().find(
                "whitespace"),
            std::string::npos);

  std::vector<SnapshotResult> unsorted = make_results();
  unsorted[0].per_hg[0].confirmed_or_ases = {3, 1};
  EXPECT_NE(ServiceSnapshot::from_results("x", unsorted)->validate().find(
                "sorted"),
            std::string::npos);

  std::vector<SnapshotResult> inverted = make_results();
  inverted[0].per_hg[0].confirmed_ips =
      inverted[0].per_hg[0].candidate_ips + 1;
  EXPECT_NE(ServiceSnapshot::from_results("x", inverted)->validate().find(
                "exceed"),
            std::string::npos);
}

TEST(ServiceSnapshotTest, CheckpointRoundtripsThroughLoader) {
  const std::string dir = temp_dir("svc_ckpt_roundtrip");
  const std::string path =
      write_checkpoint(dir, "checkpoint.offnet", make_results());
  auto loaded = offnet::svc::load_snapshot_from_checkpoint(path);
  EXPECT_EQ(loaded->validate(), "");
  EXPECT_EQ(loaded->source(), path);
  EXPECT_EQ(loaded->hypergiants(),
            (std::vector<std::string>{"google", "netflix"}));
  const ServiceSnapshot::Cell* cell =
      loaded->cell(0, loaded->hypergiant_index("google"));
  ASSERT_NE(cell, nullptr);
  EXPECT_EQ(cell->confirmed_ips, 8u);
  EXPECT_EQ(cell->confirmed_ases, (std::vector<std::uint32_t>{1, 3}));
}

TEST(ServiceSnapshotTest, LoadSnapshotRejectsNonexistentPath) {
  EXPECT_THROW(offnet::svc::load_snapshot("/no/such/source", 1),
               std::runtime_error);
}

// ---------------------------------------------------------------------------
// Server end-to-end, over real unix-domain sockets.

struct TestServer {
  std::string dir;
  obs::Registry metrics;
  std::unique_ptr<Server> server;

  explicit TestServer(const std::string& name) : dir(temp_dir(name)) {}

  /// Starts a server on a unix socket in `dir` with test-friendly
  /// defaults; `tweak` adjusts options before start.
  template <class Tweak>
  void start(Tweak&& tweak, std::size_t scale = 1) {
    ServerOptions options;
    options.endpoint = Endpoint::unix_socket(dir + "/offnetd.sock");
    options.enable_sleep = true;
    options.default_deadline_ms = 5000;
    options.metrics = &metrics;
    tweak(options);
    server = std::make_unique<Server>(options, make_snapshot(scale));
    server->start();
  }

  void start() {
    start([](ServerOptions&) {});
  }

  Client client(int timeout_ms = 5000) {
    return Client(server->bound_endpoint(), timeout_ms);
  }

  std::uint64_t counter(const char* name) {
    const obs::RegistrySnapshot stats = metrics.snapshot();
    auto it = stats.counters.find(name);
    return it == stats.counters.end() ? 0u : it->second;
  }
};

TEST(ServerTest, RejectsUnserviceableInitialSnapshot) {
  ServerOptions options;
  options.endpoint = Endpoint::unix_socket(
      temp_dir("svc_bad_initial") + "/offnetd.sock");
  EXPECT_THROW(Server(options, nullptr), SnapshotValidationError);
  EXPECT_THROW(Server(options, ServiceSnapshot::from_results("empty", {})),
               SnapshotValidationError);
}

TEST(ServerTest, AnswersQueriesOverUnixSocket) {
  TestServer ts("svc_queries");
  ts.start();
  Client client = ts.client();

  EXPECT_EQ(client.request("PING"), "OK pong");
  auto info = client.request("INFO");
  ASSERT_TRUE(info.has_value());
  EXPECT_NE(info->find("version=1"), std::string::npos);
  EXPECT_NE(info->find("months=3"), std::string::npos);
  EXPECT_NE(info->find("usable=2"), std::string::npos);
  EXPECT_NE(info->find("hgs=2"), std::string::npos);

  EXPECT_EQ(client.request("HGS"), "OK google netflix");
  EXPECT_EQ(client.request("FOOTPRINT " + month_label(0) + " google"),
            google_footprint_response(1));
  const std::string complete =
      offnet::core::to_string(SnapshotHealth::kComplete);
  EXPECT_EQ(client.request("COVERAGE " + month_label(0)),
            "OK month=" + month_label(0) + " health=" + complete +
                " hgs_with_footprint=2 confirmed_ases=3 confirmed_ips=10");
  EXPECT_EQ(client.request("COHOST " + month_label(0) + " 2"),
            "OK month=" + month_label(0) + " as=2 count=1 hgs=netflix");
  EXPECT_EQ(client.request("COHOST " + month_label(0) + " 99"),
            "OK month=" + month_label(0) + " as=99 count=0 hgs=-");

  // Query errors are per-request, never per-connection.
  auto unknown_hg =
      client.request("FOOTPRINT " + month_label(0) + " amazon");
  ASSERT_TRUE(unknown_hg.has_value());
  EXPECT_EQ(unknown_hg->rfind("ERR", 0), 0u) << *unknown_hg;
  auto unusable = client.request("FOOTPRINT " + month_label(2) + " google");
  ASSERT_TRUE(unusable.has_value());
  EXPECT_NE(unusable->find("not usable"), std::string::npos);
  EXPECT_EQ(client.request("PING"), "OK pong");

  auto stats = client.request("STATS");
  ASSERT_TRUE(stats.has_value());
  EXPECT_NE(stats->find("requests="), std::string::npos);

  EXPECT_EQ(client.request("QUIT"), "OK bye");
  ts.server->request_drain();
  EXPECT_TRUE(ts.server->join());
}

TEST(ServerTest, MalformedBytesGetErrAndConnectionSurvives) {
  TestServer ts("svc_malformed");
  ts.start();
  Client client = ts.client();

  ASSERT_TRUE(client.send_raw("PI\x01NG\n"));
  auto response = client.read_line();
  ASSERT_TRUE(response.has_value());
  EXPECT_NE(response->find("ERR"), std::string::npos);
  EXPECT_NE(response->find("0x01"), std::string::npos);

  auto bogus = client.request("BOGUS 1 2 3");
  ASSERT_TRUE(bogus.has_value());
  EXPECT_NE(bogus->find("unknown verb 'BOGUS'"), std::string::npos);

  // An overlong line is rejected once and the stream recovers.
  std::string flood(offnet::svc::kMaxRequestBytes + 100, 'A');
  flood += '\n';
  ASSERT_TRUE(client.send_raw(flood));
  auto overlong = client.read_line();
  ASSERT_TRUE(overlong.has_value());
  EXPECT_NE(overlong->find("exceeds"), std::string::npos);

  // The same connection still serves.
  EXPECT_EQ(client.request("PING"), "OK pong");
  EXPECT_GE(ts.counter(metric_names::kMalformed), 2u);

  ts.server->request_drain();
  EXPECT_TRUE(ts.server->join());
}

// A client that vanishes after sending its request (before the response
// is written) must cost exactly that connection: the worker's send hits
// a closed peer — MSG_NOSIGNAL, never SIGPIPE — and the server keeps
// serving everyone else.
TEST(ServerTest, ClientDisconnectMidResponseLeavesServerServing) {
  TestServer ts("svc_disconnect");
  ts.start();

  for (int i = 0; i < 3; ++i) {
    Client goner = ts.client();
    ASSERT_TRUE(goner.send_raw("STATS\n"));
    goner.close();  // gone before (or while) the response is written
  }

  Client client = ts.client();
  EXPECT_EQ(client.request("PING"), "OK pong");
  EXPECT_EQ(client.request("QUIT"), "OK bye");
  ts.server->request_drain();
  EXPECT_TRUE(ts.server->join());
}

// Injected EINTR at the socket seams must be retried transparently —
// an interrupted recv/send is not a dead connection. The injector is
// process-wide, so both the server's and the client's stream cross it;
// the exchange must succeed either way.
TEST(ServerTest, EintrAtSocketSeamsIsRetriedNotFatal) {
  TestServer ts("svc_eintr");
  ts.start();

  FaultInjector faults;
  faults.fail_with_errno(offnet::core::fault_stage::kSvcRead, 1, EINTR);
  faults.fail_with_errno(offnet::core::fault_stage::kSvcWrite, 1, EINTR);
  faults.fail_with_errno(offnet::core::fault_stage::kSvcAccept, 1, EINTR);
  offnet::core::ScopedSysFaultInjector seams(faults);

  Client client = ts.client();
  EXPECT_EQ(client.request("PING"), "OK pong");
  EXPECT_EQ(client.request("PING"), "OK pong");

  ts.server->request_drain();
  EXPECT_TRUE(ts.server->join());
}

TEST(ServerTest, DeadlineExceededAnswersBusy) {
  TestServer ts("svc_deadline");
  ts.start();
  Client client = ts.client();
  auto response = client.request("T=20 SLEEP 200");
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(*response, "BUSY deadline 20ms exceeded");
  // An honest shed, then business as usual.
  EXPECT_EQ(client.request("PING"), "OK pong");
  EXPECT_GE(ts.counter(metric_names::kShedDeadline), 1u);
  ts.server->request_drain();
  EXPECT_TRUE(ts.server->join());
}

TEST(ServerTest, FullAdmissionQueueShedsBusyWithoutBlocking) {
  TestServer ts("svc_busy");
  ts.start([](ServerOptions& options) {
    options.n_workers = 1;
    options.queue_capacity = 1;
  });

  // Occupy the only worker, then the only queue slot; everything past
  // that must be shed with an explicit BUSY by the accept thread.
  // The trailing QUIT releases the worker once the sleep finishes —
  // otherwise it would keep the blocker's connection (idle but open)
  // and the queued extra would wait out the whole idle timeout.
  Client blocker = ts.client();
  ASSERT_TRUE(blocker.send_raw("SLEEP 800\nQUIT\n"));
  sleep_ms(150);

  std::vector<std::unique_ptr<Client>> extras;
  std::vector<std::string> responses;
  for (int i = 0; i < 5; ++i) {
    extras.push_back(std::make_unique<Client>(ts.server->bound_endpoint(),
                                              10'000));
    ASSERT_TRUE(extras.back()->send_raw("PING\n"));
  }
  for (auto& extra : extras) {
    auto response = extra->read_line();
    ASSERT_TRUE(response.has_value());
    responses.push_back(*response);
  }

  // One connection fit the queue; the rest were shed by the accept
  // thread. Under heavy load the queued one may itself age out and be
  // shed at admission — still an explicit BUSY, never silence.
  std::size_t busy = 0;
  std::size_t served = 0;
  std::size_t stale = 0;
  for (const std::string& response : responses) {
    if (response == "BUSY queue-full") ++busy;
    if (response == "OK pong") ++served;
    if (response == "BUSY admission-deadline") ++stale;
  }
  EXPECT_GE(busy, 1u) << "no connection was shed";
  EXPECT_GE(served + stale, 1u) << "the queued connection got no answer";
  EXPECT_EQ(busy + served + stale, responses.size());
  EXPECT_GE(ts.counter(metric_names::kShedBusy), 1u);

  auto slept = blocker.read_line();
  ASSERT_TRUE(slept.has_value());
  EXPECT_EQ(*slept, "OK slept=800");
  ts.server->request_drain();
  EXPECT_TRUE(ts.server->join());
}

TEST(ServerTest, StaleQueuedConnectionIsShedAtAdmission) {
  TestServer ts("svc_admission_deadline");
  ts.start([](ServerOptions& options) {
    options.n_workers = 1;
    options.queue_capacity = 4;
    options.default_deadline_ms = 100;
  });

  // The worker is pinned for 400ms; the queued connection will have
  // waited out the 100ms admission deadline by the time it is popped.
  Client blocker = ts.client();
  ASSERT_TRUE(blocker.send_raw("T=2000 SLEEP 400\nQUIT\n"));
  sleep_ms(100);
  Client queued = ts.client();
  auto response = queued.request("PING");
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(*response, "BUSY admission-deadline");
  EXPECT_GE(ts.counter(metric_names::kShedDeadline), 1u);

  auto slept = blocker.read_line();
  ASSERT_TRUE(slept.has_value());
  EXPECT_EQ(*slept, "OK slept=400");
  ts.server->request_drain();
  EXPECT_TRUE(ts.server->join());
}

TEST(ServerTest, ReloadPublishesNewVersionOldPinsSurvive) {
  TestServer ts("svc_reload");
  ts.start();
  const std::string next =
      write_checkpoint(ts.dir, "next.offnet", make_results(/*scale=*/2));

  Client client = ts.client();
  EXPECT_EQ(client.request("FOOTPRINT " + month_label(0) + " google"),
            google_footprint_response(1));
  auto reload = client.request("RELOAD " + next);
  ASSERT_TRUE(reload.has_value());
  EXPECT_EQ(*reload, "OK version=2 source=" + next);
  EXPECT_EQ(ts.server->version(), 2u);
  EXPECT_EQ(client.request("FOOTPRINT " + month_label(0) + " google"),
            google_footprint_response(2));
  EXPECT_EQ(ts.counter(metric_names::kReloadAccepted), 1u);
  ts.server->request_drain();
  EXPECT_TRUE(ts.server->join());
}

TEST(ServerTest, CorruptReloadIsRejectedAndOldVersionKeepsServing) {
  TestServer ts("svc_reload_corrupt");
  ts.start();
  const std::string corrupt = ts.dir + "/corrupt.offnet";
  std::ofstream(corrupt, std::ios::binary) << "not a checkpoint\n";

  Client client = ts.client();
  auto reload = client.request("RELOAD " + corrupt);
  ASSERT_TRUE(reload.has_value());
  EXPECT_NE(reload->find("ERR reload rejected"), std::string::npos);
  // Validate-before-swap: version 1 still serves, bit for bit.
  EXPECT_EQ(ts.server->version(), 1u);
  EXPECT_EQ(client.request("FOOTPRINT " + month_label(0) + " google"),
            google_footprint_response(1));
  EXPECT_EQ(ts.counter(metric_names::kReloadRejected), 1u);
  EXPECT_EQ(ts.counter(metric_names::kReloadAccepted), 0u);

  // A missing path is rejected the same way.
  auto missing = client.request("RELOAD /no/such/source");
  ASSERT_TRUE(missing.has_value());
  EXPECT_NE(missing->find("ERR reload rejected"), std::string::npos);
  EXPECT_EQ(ts.server->version(), 1u);
  ts.server->request_drain();
  EXPECT_TRUE(ts.server->join());
}

TEST(ServerTest, FaultInjectedReloadLeavesPriorVersionServing) {
  FaultInjector faults;
  faults.fail_at(offnet::core::fault_stage::kSvcReload, 1);
  TestServer ts("svc_reload_fault");
  ts.start([&faults](ServerOptions& options) { options.faults = &faults; });
  const std::string next =
      write_checkpoint(ts.dir, "next.offnet", make_results(/*scale=*/2));

  Client client = ts.client();
  // First crossing of the svc-reload stage throws inside do_reload —
  // before anything was published.
  auto failed = client.request("RELOAD " + next);
  ASSERT_TRUE(failed.has_value());
  EXPECT_NE(failed->find("ERR reload rejected"), std::string::npos);
  EXPECT_EQ(ts.server->version(), 1u);
  EXPECT_EQ(client.request("FOOTPRINT " + month_label(0) + " google"),
            google_footprint_response(1));

  // The second crossing is unarmed: the same reload now succeeds.
  auto retried = client.request("RELOAD " + next);
  ASSERT_TRUE(retried.has_value());
  EXPECT_EQ(retried->rfind("OK version=2", 0), 0u) << *retried;
  EXPECT_EQ(client.request("FOOTPRINT " + month_label(0) + " google"),
            google_footprint_response(2));
  ts.server->request_drain();
  EXPECT_TRUE(ts.server->join());
}

TEST(ServerTest, DrainFinishesInFlightWorkAndRefusesNewConnections) {
  TestServer ts("svc_drain");
  ts.start();
  Client client = ts.client();
  ASSERT_TRUE(client.send_raw("SLEEP 300\n"));
  sleep_ms(100);  // the worker is now inside the handler

  ts.server->request_drain();
  EXPECT_TRUE(ts.server->join());

  // Zero lost in-flight responses: the admitted request completed.
  auto response = client.read_line();
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(*response, "OK slept=300");

  // The listener is gone (unix socket unlinked by the Listener dtor).
  EXPECT_THROW(Client(Endpoint::unix_socket(ts.dir + "/offnetd.sock"), 500),
               offnet::svc::SocketError);
}

// The tentpole torture: concurrent queries against concurrent reloads,
// then a drain — every response arrives and matches exactly one
// published generation (never a mix), and the drain is clean. Run under
// TSan via the sanitizer build for the data-race half of the proof.
TEST(ServerTest, ConcurrentQueriesAndReloadsThenDrainLoseNothing) {
  TestServer ts("svc_torture");
  ts.start([](ServerOptions& options) {
    options.n_workers = 4;
    options.queue_capacity = 64;
    options.default_deadline_ms = 10'000;
  });
  const std::string gen1 =
      write_checkpoint(ts.dir, "gen1.offnet", make_results(/*scale=*/1));
  const std::string gen2 =
      write_checkpoint(ts.dir, "gen2.offnet", make_results(/*scale=*/2));
  const std::string fp1 = google_footprint_response(1);
  const std::string fp2 = google_footprint_response(2);
  const std::string query = "FOOTPRINT " + month_label(0) + " google";

  constexpr int kReaders = 3;
  constexpr int kQueriesPerReader = 40;
  std::atomic<int> answered{0};
  std::atomic<int> mixed{0};
  std::vector<std::thread> threads;
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&] {
      Client client(ts.server->bound_endpoint(), 15'000);
      for (int i = 0; i < kQueriesPerReader; ++i) {
        auto response = client.request(query);
        if (!response.has_value()) continue;
        answered.fetch_add(1, std::memory_order_relaxed);
        if (*response != fp1 && *response != fp2) {
          mixed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  threads.emplace_back([&] {
    Client client(ts.server->bound_endpoint(), 15'000);
    for (int i = 0; i < 10; ++i) {
      auto response =
          client.request("RELOAD " + ((i % 2 == 0) ? gen2 : gen1));
      ASSERT_TRUE(response.has_value());
      EXPECT_EQ(response->rfind("OK version=", 0), 0u) << *response;
    }
  });
  for (std::thread& thread : threads) thread.join();

  // Every query got a response, each from one coherent snapshot version.
  EXPECT_EQ(answered.load(), kReaders * kQueriesPerReader);
  EXPECT_EQ(mixed.load(), 0);
  EXPECT_EQ(ts.server->version(), 11u);  // initial + 10 reloads

  ts.server->request_drain();
  EXPECT_TRUE(ts.server->join());
  EXPECT_GE(ts.counter(metric_names::kReloadAccepted), 10u);
  const obs::RegistrySnapshot stats = ts.metrics.snapshot();
  auto latency = stats.histograms.find(metric_names::kLatencyUs);
  ASSERT_NE(latency, stats.histograms.end());
  EXPECT_GE(latency->second.count,
            static_cast<std::uint64_t>(kReaders * kQueriesPerReader));
}

}  // namespace
