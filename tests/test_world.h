#pragma once

#include "scan/world.h"

namespace offnet::testing {

/// A down-scaled world shared by all integration-style tests: ~3.5k ASes
/// and a 1:1000 background Internet. Built once per test binary.
inline const scan::World& small_world() {
  static const scan::World world = [] {
    scan::WorldConfig config;
    config.topology_scale = 0.05;
    config.background_scale = 0.001;
    return scan::World(config);
  }();
  return world;
}

/// An even smaller world for expensive sweeps.
inline const scan::World& tiny_world() {
  static const scan::World world = [] {
    scan::WorldConfig config;
    config.topology_scale = 0.02;
    config.background_scale = 0.0005;
    return scan::World(config);
  }();
  return world;
}

}  // namespace offnet::testing
