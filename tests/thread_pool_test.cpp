#include "core/thread_pool.h"

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

namespace offnet::core {
namespace {

TEST(ThreadPoolTest, EmptyTaskSetReturnsImmediately) {
  ThreadPool pool(4);
  pool.run_all({});
  pool.for_shards(0, 4, [](std::size_t, std::size_t begin, std::size_t end) {
    EXPECT_EQ(begin, end);
  });
}

TEST(ThreadPoolTest, RunsEveryTaskExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kTasks = 100;
  std::vector<std::atomic<int>> runs(kTasks);
  std::vector<std::function<void()>> tasks;
  for (std::size_t i = 0; i < kTasks; ++i) {
    tasks.push_back([&runs, i] { ++runs[i]; });
  }
  pool.run_all(std::move(tasks));
  for (std::size_t i = 0; i < kTasks; ++i) EXPECT_EQ(runs[i].load(), 1);
}

TEST(ThreadPoolTest, SingleThreadPoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.concurrency(), 1u);
  const auto caller = std::this_thread::get_id();
  std::vector<std::thread::id> ran;
  pool.run_all({[&] { ran.push_back(std::this_thread::get_id()); },
                [&] { ran.push_back(std::this_thread::get_id()); }});
  ASSERT_EQ(ran.size(), 2u);
  EXPECT_EQ(ran[0], caller);
  EXPECT_EQ(ran[1], caller);
}

TEST(ThreadPoolTest, ExceptionPropagatesAfterAllTasksRan) {
  ThreadPool pool(4);
  constexpr std::size_t kTasks = 8;
  std::vector<std::atomic<int>> runs(kTasks);
  std::vector<std::function<void()>> tasks;
  for (std::size_t i = 0; i < kTasks; ++i) {
    tasks.push_back([&runs, i] {
      ++runs[i];
      if (i == 3) throw std::runtime_error("task 3 failed");
    });
  }
  EXPECT_THROW(pool.run_all(std::move(tasks)), std::runtime_error);
  // A failing task must not abandon the rest of the batch.
  for (std::size_t i = 0; i < kTasks; ++i) EXPECT_EQ(runs[i].load(), 1);
}

TEST(ThreadPoolTest, SingleFailurePreservesExceptionType) {
  ThreadPool pool(2);
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 4; ++i) {
    tasks.push_back([i] {
      if (i == 2) throw std::out_of_range("just this one");
    });
  }
  EXPECT_THROW(pool.run_all(std::move(tasks)), std::out_of_range);
}

TEST(ThreadPoolTest, MultipleFailuresAreCountedNotSwallowed) {
  ThreadPool pool(3);
  constexpr std::size_t kTasks = 8;
  std::vector<std::atomic<int>> runs(kTasks);
  std::vector<std::function<void()>> tasks;
  for (std::size_t i = 0; i < kTasks; ++i) {
    tasks.push_back([i, &runs] {
      ++runs[i];
      // Identical messages: which failure is reported first is scheduling
      // dependent, but the suppressed count is not.
      if (i % 2 == 1) throw std::runtime_error("boom");
    });
  }
  try {
    pool.run_all(std::move(tasks));
    FAIL() << "run_all should have thrown";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom (and 3 more task failures suppressed)");
  }
  for (std::size_t i = 0; i < kTasks; ++i) EXPECT_EQ(runs[i].load(), 1);
}

TEST(ThreadPoolTest, FailedBatchDoesNotPoisonTheNext) {
  ThreadPool pool(2);
  std::vector<std::function<void()>> bad;
  for (int i = 0; i < 3; ++i) {
    bad.push_back([] { throw std::runtime_error("boom"); });
  }
  EXPECT_THROW(pool.run_all(std::move(bad)), std::runtime_error);

  std::atomic<int> runs{0};
  std::vector<std::function<void()>> good;
  for (int i = 0; i < 3; ++i) good.push_back([&runs] { ++runs; });
  pool.run_all(std::move(good));
  EXPECT_EQ(runs.load(), 3);
}

TEST(ThreadPoolTest, NestedRunAllDoesNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> inner_runs{0};
  std::vector<std::function<void()>> outer;
  for (int i = 0; i < 4; ++i) {
    outer.push_back([&pool, &inner_runs] {
      std::vector<std::function<void()>> inner;
      for (int j = 0; j < 4; ++j) inner.push_back([&inner_runs] { ++inner_runs; });
      pool.run_all(std::move(inner));
    });
  }
  pool.run_all(std::move(outer));
  EXPECT_EQ(inner_runs.load(), 16);
}

TEST(ThreadPoolTest, ForShardsCoversRangeExactlyOnceInOrder) {
  ThreadPool pool(3);
  constexpr std::size_t kN = 17;
  std::vector<std::atomic<int>> hits(kN);
  std::vector<std::pair<std::size_t, std::size_t>> bounds(5);
  pool.for_shards(kN, 5,
                  [&](std::size_t shard, std::size_t begin, std::size_t end) {
                    bounds[shard] = {begin, end};
                    for (std::size_t i = begin; i < end; ++i) ++hits[i];
                  });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1);
  // Contiguous, ordered shard boundaries: the determinism of the merged
  // pipeline rests on this.
  EXPECT_EQ(bounds.front().first, 0u);
  EXPECT_EQ(bounds.back().second, kN);
  for (std::size_t s = 1; s < bounds.size(); ++s) {
    EXPECT_EQ(bounds[s].first, bounds[s - 1].second);
  }
}

TEST(ThreadPoolTest, ForShardsWithMoreShardsThanItems) {
  ThreadPool pool(2);
  std::vector<std::atomic<int>> hits(3);
  pool.for_shards(3, 8, [&](std::size_t, std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) ++hits[i];
  });
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPoolTest, ResolveThreadCount) {
  EXPECT_EQ(resolve_thread_count(1), 1u);
  EXPECT_EQ(resolve_thread_count(7), 7u);
  EXPECT_GE(resolve_thread_count(0), 1u);  // 0 = hardware concurrency
}

}  // namespace
}  // namespace offnet::core
