#include <gtest/gtest.h>

#include "tls/ca.h"
#include "tls/certificate.h"
#include "tls/validator.h"

namespace offnet::tls {
namespace {

constexpr net::DayTime kIssued = net::DayTime::from(net::YearMonth(2015, 1));
constexpr net::DayTime kDuring = net::DayTime::from(net::YearMonth(2015, 6));

class ValidatorTest : public ::testing::Test {
 protected:
  ValidatorTest() : ca_(store_, roots_), validator_(store_, roots_) {
    root_ = ca_.create_root("Test Root");
    intermediate_ = ca_.create_intermediate(root_, "Test Intermediate");
  }

  CertId issue(int days = 360) {
    return ca_.issue(intermediate_, {"Acme Corp", "www.acme.example"},
                     {"www.acme.example"}, kIssued, days);
  }

  CertificateStore store_;
  RootStore roots_;
  CaService ca_;
  CertValidator validator_;
  CertId root_ = kNoCert;
  CertId intermediate_ = kNoCert;
};

TEST_F(ValidatorTest, ValidCertificate) {
  EXPECT_EQ(validator_.validate(issue(), kDuring), CertStatus::kValid);
}

TEST_F(ValidatorTest, ExpiredCertificate) {
  CertId id = issue(30);
  EXPECT_EQ(validator_.validate(id, kIssued.plus_days(31)),
            CertStatus::kExpired);
  EXPECT_EQ(validator_.validate(id, kIssued.plus_days(29)),
            CertStatus::kValid);
}

TEST_F(ValidatorTest, NotYetValid) {
  CertId id = issue();
  EXPECT_EQ(validator_.validate(id, kIssued.plus_days(-1)),
            CertStatus::kNotYetValid);
}

TEST_F(ValidatorTest, SelfSignedEndEntity) {
  CertId id = ca_.issue_self_signed({"Self Org", "self.example"},
                                    {"self.example"}, kIssued, 360);
  EXPECT_EQ(validator_.validate(id, kDuring), CertStatus::kSelfSigned);
}

TEST_F(ValidatorTest, UntrustedChain) {
  CertId id = ca_.issue_untrusted({"Enterprise", "intra.example"},
                                  {"intra.example"}, kIssued, 360);
  EXPECT_EQ(validator_.validate(id, kDuring), CertStatus::kUntrustedChain);
}

TEST_F(ValidatorTest, Malformed) {
  Certificate broken;
  broken.not_before = kIssued;
  broken.not_after = kIssued.plus_days(360);
  CertId id = store_.add(std::move(broken));
  EXPECT_EQ(validator_.validate(id, kDuring), CertStatus::kMalformed);
  EXPECT_EQ(validator_.validate(kNoCert, kDuring), CertStatus::kMalformed);
}

TEST_F(ValidatorTest, ChainStopsAtTrustedIntermediate) {
  // The issuing intermediate is in the trusted set; validation succeeds
  // without walking to the root.
  EXPECT_TRUE(roots_.is_trusted(intermediate_));
  EXPECT_TRUE(validator_.is_valid(issue(), kDuring));
}

TEST_F(ValidatorTest, ExpiredIntermediateBreaksChain) {
  // Hand-build an EE under an expired intermediate.
  Certificate inter;
  inter.subject.organization = "Expired CA";
  inter.not_before = kIssued.plus_days(-720);
  inter.not_after = kIssued.plus_days(-360);
  inter.issuer = root_;
  inter.is_ca = true;
  CertId expired_ca = store_.add(std::move(inter));
  roots_.trust(expired_ca);

  Certificate ee;
  ee.subject.organization = "Acme";
  ee.dns_names = {"a.example"};
  ee.not_before = kIssued;
  ee.not_after = kIssued.plus_days(360);
  ee.issuer = expired_ca;
  CertId id = store_.add(std::move(ee));
  EXPECT_EQ(validator_.validate(id, kDuring), CertStatus::kUntrustedChain);
}

TEST_F(ValidatorTest, ChainWalk) {
  CertId id = issue();
  auto chain = store_.chain(id);
  ASSERT_EQ(chain.size(), 3u);
  EXPECT_EQ(chain[0], id);
  EXPECT_EQ(chain[1], intermediate_);
  EXPECT_EQ(chain[2], root_);
}

TEST(CertStatusTest, Names) {
  EXPECT_EQ(cert_status_name(CertStatus::kValid), "valid");
  EXPECT_EQ(cert_status_name(CertStatus::kExpired), "expired");
  EXPECT_EQ(cert_status_name(CertStatus::kSelfSigned), "self-signed");
}

struct WildcardCase {
  const char* pattern;
  const char* host;
  bool matches;
};

class WildcardTest : public ::testing::TestWithParam<WildcardCase> {};

TEST_P(WildcardTest, Matches) {
  const auto& c = GetParam();
  EXPECT_EQ(dns_name_matches(c.pattern, c.host), c.matches)
      << c.pattern << " vs " << c.host;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, WildcardTest,
    ::testing::Values(
        WildcardCase{"www.google.com", "www.google.com", true},
        WildcardCase{"www.google.com", "WWW.Google.COM", true},
        WildcardCase{"www.google.com", "mail.google.com", false},
        WildcardCase{"*.google.com", "www.google.com", true},
        WildcardCase{"*.google.com", "google.com", false},
        WildcardCase{"*.google.com", "a.b.google.com", false},
        WildcardCase{"*.google.com", ".google.com", false},
        WildcardCase{"*.google.com", "www.googleXcom", false},
        WildcardCase{"*.googlevideo.com", "r1.googlevideo.com", true},
        WildcardCase{"*.com", "example.com", true}));

TEST(WildcardTest, AnyOf) {
  std::vector<std::string> patterns = {"*.netflix.com", "*.nflxvideo.net"};
  EXPECT_TRUE(any_dns_name_matches(patterns, "api.netflix.com"));
  EXPECT_TRUE(any_dns_name_matches(patterns, "oca1.nflxvideo.net"));
  EXPECT_FALSE(any_dns_name_matches(patterns, "netflix.com"));
  EXPECT_FALSE(any_dns_name_matches(patterns, "example.org"));
}

TEST(CertificateTest, WithinValidity) {
  Certificate cert;
  cert.not_before = net::DayTime(100);
  cert.not_after = net::DayTime(200);
  EXPECT_TRUE(cert.within_validity(net::DayTime(100)));
  EXPECT_TRUE(cert.within_validity(net::DayTime(200)));
  EXPECT_FALSE(cert.within_validity(net::DayTime(99)));
  EXPECT_FALSE(cert.within_validity(net::DayTime(201)));
}

}  // namespace
}  // namespace offnet::tls
