#include <gtest/gtest.h>

#include <numeric>
#include <unordered_set>

#include "net/date.h"
#include "topology/as_graph.h"
#include "topology/category.h"
#include "topology/generator.h"
#include "topology/population.h"
#include "topology/region.h"

namespace offnet::topo {
namespace {

TEST(CategoryTest, Thresholds) {
  EXPECT_EQ(categorize(0), SizeCategory::kStub);
  EXPECT_EQ(categorize(1), SizeCategory::kStub);
  EXPECT_EQ(categorize(2), SizeCategory::kSmall);
  EXPECT_EQ(categorize(10), SizeCategory::kSmall);
  EXPECT_EQ(categorize(11), SizeCategory::kMedium);
  EXPECT_EQ(categorize(100), SizeCategory::kMedium);
  EXPECT_EQ(categorize(101), SizeCategory::kLarge);
  EXPECT_EQ(categorize(1000), SizeCategory::kLarge);
  EXPECT_EQ(categorize(1001), SizeCategory::kXLarge);
}

TEST(RegionTest, CountryTable) {
  auto countries = country_table();
  EXPECT_GT(countries.size(), 60u);
  // Every region is populated.
  for (Region r : all_regions()) {
    bool found = false;
    for (const auto& c : countries) {
      if (c.region == r) found = true;
    }
    EXPECT_TRUE(found) << region_name(r);
  }
  // A few sanity anchors.
  bool has_brazil = false;
  for (const auto& c : countries) {
    if (c.code == std::string_view("BR")) {
      has_brazil = true;
      EXPECT_EQ(c.region, Region::kSouthAmerica);
      EXPECT_GT(c.internet_users_m, 100);
    }
  }
  EXPECT_TRUE(has_brazil);
}

TEST(AsGraphTest, ConeOfChain) {
  // provider -> mid -> leaf: cones 3, 2, 1.
  AsGraph g;
  AsId top = g.add_as(1);
  AsId mid = g.add_as(2);
  AsId leaf = g.add_as(3);
  g.add_customer_link(top, mid);
  g.add_customer_link(mid, leaf);
  auto cones = g.customer_cone_sizes();
  EXPECT_EQ(cones[top], 3u);
  EXPECT_EQ(cones[mid], 2u);
  EXPECT_EQ(cones[leaf], 1u);
}

TEST(AsGraphTest, MultihomedCustomerCountedOnce) {
  AsGraph g;
  AsId top = g.add_as(1);
  AsId a = g.add_as(2);
  AsId b = g.add_as(3);
  AsId leaf = g.add_as(4);
  g.add_customer_link(top, a);
  g.add_customer_link(top, b);
  g.add_customer_link(a, leaf);
  g.add_customer_link(b, leaf);  // multihomed
  auto cones = g.customer_cone_sizes();
  EXPECT_EQ(cones[top], 4u);  // not 5: leaf counted once
  EXPECT_EQ(cones[a], 2u);
  EXPECT_EQ(cones[b], 2u);
}

TEST(AsGraphTest, PeersDoNotContributeToCones) {
  AsGraph g;
  AsId a = g.add_as(1);
  AsId b = g.add_as(2);
  AsId leaf = g.add_as(3);
  g.add_peer_link(a, b);
  g.add_customer_link(b, leaf);
  auto cones = g.customer_cone_sizes();
  EXPECT_EQ(cones[a], 1u);
  EXPECT_EQ(cones[b], 2u);
}

TEST(AsGraphTest, AliveMaskRestrictsCones) {
  AsGraph g;
  AsId top = g.add_as(1);
  AsId leaf1 = g.add_as(2);
  AsId leaf2 = g.add_as(3);
  g.add_customer_link(top, leaf1);
  g.add_customer_link(top, leaf2);
  std::vector<char> alive = {1, 1, 0};
  auto cones = g.customer_cone_sizes(alive);
  EXPECT_EQ(cones[top], 2u);
  EXPECT_EQ(cones[leaf2], 0u);  // dead
}

TEST(AsGraphTest, ConeUnion) {
  AsGraph g;
  AsId a = g.add_as(1);
  AsId b = g.add_as(2);
  AsId leaf = g.add_as(3);
  AsId other = g.add_as(4);
  g.add_customer_link(a, leaf);
  g.add_customer_link(b, other);
  std::vector<AsId> roots = {a};
  auto in_cone = g.cone_union(roots);
  EXPECT_TRUE(in_cone[a]);
  EXPECT_TRUE(in_cone[leaf]);
  EXPECT_FALSE(in_cone[b]);
  EXPECT_FALSE(in_cone[other]);
}

TEST(AsGraphTest, LargeConeViaOverflowPath) {
  // A provider with > 2048 customers exercises the BFS fallback.
  AsGraph g;
  AsId top = g.add_as(1);
  for (net::Asn i = 0; i < 2500; ++i) {
    AsId leaf = g.add_as(100 + i);
    g.add_customer_link(top, leaf);
  }
  auto cones = g.customer_cone_sizes();
  EXPECT_EQ(cones[top], 2501u);
}

class GeneratedTopologyTest : public ::testing::Test {
 protected:
  static const Topology& topology() {
    static const Topology topo = [] {
      GeneratorConfig config;
      config.scale = 0.1;
      config.org_seeds.push_back({"Google LLC", "US", 2, 8, 20});
      config.org_seeds.push_back({"Netflix, Inc.", "US", 1, 8, 20});
      return TopologyGenerator(config).generate();
    }();
    return topo;
  }
};

TEST_F(GeneratedTopologyTest, PopulationGrows) {
  const Topology& t = topology();
  std::size_t first = t.alive_count(0);
  std::size_t last = t.alive_count(net::snapshot_count() - 1);
  EXPECT_EQ(last, t.as_count());
  EXPECT_LT(first, last);
  // Roughly 45k/71k at scale.
  EXPECT_NEAR(static_cast<double>(first) / last, 45000.0 / 71000.0, 0.03);
  // Monotone growth.
  for (std::size_t s = 1; s < net::snapshot_count(); ++s) {
    EXPECT_GE(t.alive_count(s), t.alive_count(s - 1));
  }
}

TEST_F(GeneratedTopologyTest, DemographicsMatchPaper) {
  const Topology& t = topology();
  std::size_t snapshot = net::snapshot_count() - 1;
  const auto& cones = t.cone_sizes(snapshot);
  std::array<std::size_t, kCategoryCount> counts{};
  for (AsId id = 0; id < t.as_count(); ++id) {
    counts[static_cast<std::size_t>(categorize(cones[id]))]++;
  }
  double total = static_cast<double>(t.as_count());
  // §6.3: ~85% Stub, ~12% Small, ~2.6% Medium, <0.5% Large, <0.1% XLarge.
  EXPECT_NEAR(counts[0] / total, 0.85, 0.03);
  EXPECT_NEAR(counts[1] / total, 0.12, 0.03);
  EXPECT_NEAR(counts[2] / total, 0.026, 0.015);
  EXPECT_LT(counts[3] / total, 0.008);
  EXPECT_LT(counts[4] / total, 0.002);
  EXPECT_GT(counts[3], 0u);
  EXPECT_GT(counts[4], 0u);
}

TEST_F(GeneratedTopologyTest, DemographicsStableOverTime) {
  const Topology& t = topology();
  for (std::size_t snapshot : {std::size_t{0}, net::snapshot_count() / 2}) {
    const auto& cones = t.cone_sizes(snapshot);
    const auto& alive = t.alive_mask(snapshot);
    std::size_t stubs = 0;
    std::size_t total = 0;
    for (AsId id = 0; id < t.as_count(); ++id) {
      if (!alive[id]) continue;
      ++total;
      if (categorize(cones[id]) == SizeCategory::kStub) ++stubs;
    }
    EXPECT_NEAR(static_cast<double>(stubs) / total, 0.85, 0.04);
  }
}

TEST_F(GeneratedTopologyTest, OrgSeedsPresent) {
  const Topology& t = topology();
  auto google = t.orgs().find_exact("Google LLC");
  ASSERT_TRUE(google.has_value());
  EXPECT_EQ(t.orgs().ases_of(*google).size(), 2u);
  auto by_keyword = t.orgs().find_by_keyword("google");
  ASSERT_EQ(by_keyword.size(), 1u);
  EXPECT_EQ(*google, by_keyword[0]);
  // Seed ASes are flagged always_routed and carry prefixes.
  for (AsId id : t.orgs().ases_of(*google)) {
    EXPECT_TRUE(t.as(id).always_routed);
    EXPECT_EQ(t.as(id).prefixes.size(), 8u);
    EXPECT_EQ(t.as(id).birth_snapshot, 0u);
  }
}

TEST_F(GeneratedTopologyTest, PrefixesAreDisjointAndClean) {
  const Topology& t = topology();
  std::vector<net::Prefix> all;
  for (AsId id = 0; id < t.as_count(); ++id) {
    for (const auto& p : t.as(id).prefixes) {
      EXPECT_FALSE(net::is_bogon(p)) << p.to_string();
      all.push_back(p);
    }
    EXPECT_FALSE(t.as(id).prefixes.empty());
    EXPECT_FALSE(net::is_reserved_asn(t.as(id).asn));
  }
  std::sort(all.begin(), all.end());
  for (std::size_t i = 1; i < all.size(); ++i) {
    EXPECT_FALSE(all[i - 1].overlaps(all[i]))
        << all[i - 1].to_string() << " overlaps " << all[i].to_string();
  }
}

TEST_F(GeneratedTopologyTest, UniqueAsns) {
  const Topology& t = topology();
  std::unordered_set<net::Asn> seen;
  for (AsId id = 0; id < t.as_count(); ++id) {
    EXPECT_TRUE(seen.insert(t.as(id).asn).second);
    EXPECT_EQ(t.find_asn(t.as(id).asn), id);
  }
  EXPECT_FALSE(t.find_asn(4199999999u).has_value());
}

TEST_F(GeneratedTopologyTest, PopulationSharesBounded) {
  const Topology& t = topology();
  std::vector<double> by_country(t.country_count(), 0.0);
  for (AsId id = 0; id < t.as_count(); ++id) {
    const AsRecord& rec = t.as(id);
    EXPECT_GE(rec.user_share, 0.0);
    EXPECT_LE(rec.user_share, 1.0);
    if (rec.country != kNoCountry) by_country[rec.country] += rec.user_share;
  }
  for (double total : by_country) {
    EXPECT_LE(total, 0.98);
  }
}

TEST_F(GeneratedTopologyTest, PopulationViewFilters) {
  const Topology& t = topology();
  PopulationView view(t);
  EXPECT_GT(view.measured_as_count(), 0u);
  std::size_t eyeballs = 0;
  for (AsId id = 0; id < t.as_count(); ++id) {
    if (t.as(id).eyeball) ++eyeballs;
    if (t.as(id).population_flaky) {
      EXPECT_DOUBLE_EQ(view.share(id), 0.0);
    }
  }
  // The presence filter drops a meaningful fraction (paper: 26k -> 9k).
  EXPECT_LT(view.measured_as_count(), eyeballs);
  EXPECT_GT(view.measured_as_count(), eyeballs / 4);
}

TEST_F(GeneratedTopologyTest, CoverageOfFullMaskIsHigh) {
  const Topology& t = topology();
  PopulationView view(t);
  std::vector<char> everyone(t.as_count(), 1);
  std::size_t s = net::snapshot_count() - 1;
  double world = view.world_coverage(everyone, s);
  EXPECT_GT(world, 0.45);  // flaky filter keeps this below the 0.97 cap
  EXPECT_LE(world, 0.97);
  std::vector<char> nobody(t.as_count(), 0);
  EXPECT_DOUBLE_EQ(view.world_coverage(nobody, s), 0.0);
}

TEST(GeneratorTest, Deterministic) {
  GeneratorConfig config;
  config.scale = 0.02;
  Topology a = TopologyGenerator(config).generate();
  Topology b = TopologyGenerator(config).generate();
  ASSERT_EQ(a.as_count(), b.as_count());
  for (AsId id = 0; id < a.as_count(); ++id) {
    EXPECT_EQ(a.as(id).asn, b.as(id).asn);
    EXPECT_EQ(a.as(id).country, b.as(id).country);
    EXPECT_EQ(a.as(id).prefixes, b.as(id).prefixes);
  }
  config.seed = 999;
  Topology c = TopologyGenerator(config).generate();
  bool differs = false;
  for (AsId id = 0; id < std::min(a.as_count(), c.as_count()); ++id) {
    if (a.as(id).asn != c.as(id).asn) differs = true;
  }
  EXPECT_TRUE(differs);
}

}  // namespace
}  // namespace offnet::topo
