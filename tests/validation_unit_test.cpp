#include <gtest/gtest.h>

#include "analysis/validation.h"

namespace offnet::analysis {
namespace {

TEST(FootprintAccuracyTest, Metrics) {
  FootprintAccuracy acc;
  acc.measured = 100;
  acc.truth = 110;
  acc.overlap = 95;
  EXPECT_DOUBLE_EQ(acc.precision(), 0.95);
  EXPECT_NEAR(acc.recall(), 95.0 / 110.0, 1e-12);

  FootprintAccuracy empty;
  EXPECT_DOUBLE_EQ(empty.precision(), 1.0);
  EXPECT_DOUBLE_EQ(empty.recall(), 1.0);
}

TEST(CrossDomainResultTest, Shares) {
  CrossDomainResult r;
  r.probes = 1000;
  r.validated = 103;
  r.validated_on_akamai = 100;
  EXPECT_NEAR(r.failing_share(), 0.897, 1e-12);
  EXPECT_NEAR(r.akamai_share_of_validated(), 100.0 / 103.0, 1e-12);
  CrossDomainResult empty;
  EXPECT_DOUBLE_EQ(empty.failing_share(), 1.0);
  EXPECT_DOUBLE_EQ(empty.akamai_share_of_validated(), 0.0);
}

TEST(ReverseTestResultTest, ScaleCorrection) {
  ReverseTestResult r;
  r.sampled_ips = 1100;
  r.sampled_offnet_ips = 100;   // 1000 background + 100 off-net sampled
  r.valid_ips = 52;
  r.valid_inferred_offnets = 50;  // 2 background origins validated
  // Raw share is inflated by the downscaled background.
  EXPECT_NEAR(r.valid_share(), 52.0 / 1100.0, 1e-12);
  // With a 100x background upscale: (2*100 + 50) / (1000*100 + 100).
  EXPECT_NEAR(r.scale_corrected_valid_share(100.0),
              250.0 / 100100.0, 1e-12);
  // Upscale of 1 must reduce to the raw share.
  EXPECT_NEAR(r.scale_corrected_valid_share(1.0), r.valid_share(), 1e-12);
  EXPECT_NEAR(r.inferred_share_of_valid(), 50.0 / 52.0, 1e-12);
}

TEST(EarlierComparisonTest, Shares) {
  EarlierComparison cmp;
  cmp.earlier_ases = 1445;
  cmp.uncovered = 1421;
  cmp.additional = 283;
  EXPECT_NEAR(cmp.uncovered_share(), 1421.0 / 1445.0, 1e-12);
  EarlierComparison empty;
  EXPECT_DOUBLE_EQ(empty.uncovered_share(), 0.0);
}

}  // namespace
}  // namespace offnet::analysis
