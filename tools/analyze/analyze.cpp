#include "analyze.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <utility>

#include "lexer.h"

namespace offnet::analyze {

namespace {

namespace fs = std::filesystem;

using lint::Stripped;
using lint::filename_of;
using lint::ident_char;
using lint::matching_paren;
using lint::skip_spaces;
using lint::strip;
using lint::trim;
using lint::word_at;

const char* const kKnownRules[] = {
    "layer-back-edge",   "layer-cycle",          "layer-undeclared",
    "mutex-unguarded",   "condvar-unguarded",    "guard-dangling",
    "metric-bypass",     "metric-undeclared",    "metric-dead",
    "metric-duplicate",  "fault-stage-bypass",   "fault-stage-undeclared",
    "fault-stage-dead",  "fault-stage-unswept",  "exit-code-literal",
    "exit-code-dead",
    "exit-code-mismatch", "stale-baseline",      "bad-suppression",
    "stale-suppression",
};

bool known_rule(std::string_view rule) {
  for (const char* id : kKnownRules) {
    if (rule == id) return true;
  }
  return false;
}

struct SourceFile {
  std::string rel;  // repo-relative path
  Stripped stripped;
};

// ---- Layer table ----
//
// The declared DAG (DESIGN.md §13). Directory-based with an explicit
// per-file override list for src/core (which holds both the layer-0
// primitives and the layer-4 orchestrators) and src/scan/record.*
// (pure data model consumed by layer-2 io loaders).

constexpr int kLayerCount = 7;

const char* layer_name(int layer) {
  static const char* const kNames[kLayerCount] = {
      "base", "util", "domain", "model", "orchestration", "service",
      "tools"};
  return layer >= 0 && layer < kLayerCount ? kNames[layer] : "?";
}

/// Strips a trailing .h/.hpp/.cpp/.cc so overrides cover header+source.
std::string_view stem_of(std::string_view rel) {
  for (std::string_view ext : {".hpp", ".cpp", ".cc", ".h"}) {
    if (rel.size() > ext.size() &&
        rel.substr(rel.size() - ext.size()) == ext) {
      return rel.substr(0, rel.size() - ext.size());
    }
  }
  return rel;
}

/// Layer of a repo-relative path; -1 = exempt (tests), -2 = undeclared.
int layer_of(std::string_view rel) {
  const std::string_view stem = stem_of(rel);
  static const char* const kBaseCore[] = {
      "src/core/mutex",       "src/core/thread_annotations",
      "src/core/thread_pool", "src/core/pinned",
      "src/core/fault",
  };
  static const char* const kOrchestrationCore[] = {
      "src/core/pipeline",       "src/core/longitudinal",
      "src/core/checkpoint",     "src/core/delta_cache",
      "src/core/header_learner", "src/core/known_headers",
      "src/core/tls_fingerprint",
  };
  if (rel.substr(0, 6) == "tests/") return -1;
  if (rel.substr(0, 6) == "tools/" || rel.substr(0, 6) == "bench/") {
    return 6;
  }
  if (rel.substr(0, 4) != "src/") return -1;  // outside the layered tree
  const std::string_view dir =
      rel.substr(4, rel.find('/', 4) == std::string_view::npos
                        ? std::string_view::npos
                        : rel.find('/', 4) - 4);
  if (dir == "core") {
    for (const char* base : kBaseCore) {
      if (stem == base) return 0;
    }
    for (const char* orch : kOrchestrationCore) {
      if (stem == orch) return 4;
    }
    return -2;
  }
  if (dir == "net" || dir == "obs") return 1;
  // The streaming ingestion engine (DESIGN.md §14) is declared
  // explicitly rather than inherited from src/io/: it sits *below* the
  // loaders (which include it) but may reach only layer-0/1 primitives
  // (core/mutex, io/report) itself, and spelling it out keeps a future
  // reshuffle of src/io from silently undeclaring it.
  if (rel.substr(0, 14) == "src/io/stream/") return 2;
  if (dir == "io" || dir == "tls" || dir == "dns" || dir == "http" ||
      dir == "bgp" || dir == "topology") {
    return 2;
  }
  if (dir == "scan") {
    if (stem == "src/scan/record") return 2;
    return 3;
  }
  if (dir == "hypergiant") return 3;
  if (dir == "analysis") return 4;
  if (dir == "svc") return 5;
  return -2;
}

// ---- Inline suppressions (same grammar as offnet_lint, own tag) ----

struct Suppression {
  std::string rule;
  std::size_t comment_line = 0;
  bool used = false;
};

struct Suppressions {
  std::map<std::string, std::map<std::size_t, std::vector<Suppression>>>
      by_file;  // rel -> covered line -> grants
  std::vector<Finding> errors;

  bool allows(const std::string& rel, std::size_t line,
              std::string_view rule) {
    auto file_it = by_file.find(rel);
    if (file_it == by_file.end()) return false;
    auto it = file_it->second.find(line);
    if (it == file_it->second.end()) return false;
    bool hit = false;
    for (Suppression& grant : it->second) {
      if (grant.rule == rule) {
        grant.used = true;
        hit = true;
      }
    }
    return hit;
  }
};

void parse_suppressions(const SourceFile& file, Suppressions& out) {
  constexpr std::string_view kTag = "offnet-analyze:";
  for (const lint::Comment& comment : file.stripped.comments) {
    std::size_t tag = comment.text.find(kTag);
    if (tag == std::string::npos) continue;
    std::string_view rest =
        trim(std::string_view(comment.text).substr(tag + kTag.size()));
    constexpr std::string_view kAllow = "allow(";
    if (rest.substr(0, kAllow.size()) != kAllow) {
      out.errors.push_back({file.rel, comment.line, "bad-suppression",
                            file.rel + ":" + "allow",
                            "expected 'allow(rule-id): justification'"});
      continue;
    }
    std::size_t close = rest.find(')');
    if (close == std::string_view::npos) {
      out.errors.push_back({file.rel, comment.line, "bad-suppression",
                            file.rel + ":" + "allow",
                            "unterminated allow(...)"});
      continue;
    }
    std::string rule(trim(rest.substr(kAllow.size(), close - kAllow.size())));
    std::string_view why = trim(rest.substr(close + 1));
    if (!why.empty() && why.front() == ':') why = trim(why.substr(1));
    if (rule == "rule-id") continue;  // the documented placeholder syntax
    if (!known_rule(rule)) {
      out.errors.push_back({file.rel, comment.line, "bad-suppression",
                            file.rel + ":" + rule,
                            "unknown rule id '" + rule + "'"});
      continue;
    }
    if (why.empty()) {
      out.errors.push_back({file.rel, comment.line, "bad-suppression",
                            file.rel + ":" + rule,
                            "suppression of '" + rule +
                                "' needs a justification"});
      continue;
    }
    out.by_file[file.rel]
               [comment.trailing ? comment.line : comment.line + 1]
                   .push_back({rule, comment.line, false});
  }
}

// ---- Pass 1: layering ----

struct IncludeEdge {
  std::size_t from_index = 0;  // into the files vector
  std::size_t to_index = 0;
  std::size_t line = 0;  // include line in the source file
};

/// Quoted includes of one file, as written.
std::vector<std::pair<std::string, std::size_t>> quoted_includes(
    const Stripped& stripped) {
  std::vector<std::pair<std::string, std::size_t>> out;
  std::istringstream lines{stripped.directives};
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(lines, line)) {
    ++lineno;
    std::string_view t = trim(line);
    if (t.substr(0, 1) != "#") continue;
    std::string_view directive = trim(t.substr(1));
    if (directive.substr(0, 7) != "include") continue;
    std::string_view target = trim(directive.substr(7));
    if (target.empty() || target.front() != '"') continue;
    std::size_t end = target.find('"', 1);
    if (end == std::string_view::npos) continue;
    out.emplace_back(std::string(target.substr(1, end - 1)), lineno);
  }
  return out;
}

std::string dir_of(std::string_view rel) {
  std::size_t slash = rel.find_last_of('/');
  return slash == std::string_view::npos ? std::string()
                                         : std::string(rel.substr(0, slash));
}

void pass_layering(const std::vector<SourceFile>& files,
                   std::vector<Finding>& out) {
  std::map<std::string, std::size_t> index_of;
  for (std::size_t i = 0; i < files.size(); ++i) {
    index_of[files[i].rel] = i;
  }

  // Undeclared layers first: every analyzed src/ file must be in the
  // table before its edges mean anything.
  for (const SourceFile& file : files) {
    if (layer_of(file.rel) == -2) {
      out.push_back(
          {file.rel, 1, "layer-undeclared", file.rel,
           "file is outside every declared layer; add it to the layer "
           "table in tools/analyze/analyze.cpp (and DESIGN.md §13)"});
    }
  }

  // Resolve quoted includes against the analyzed set.
  auto resolve = [&](const std::string& from_rel,
                     const std::string& header) -> std::optional<std::size_t> {
    std::vector<std::string> candidates;
    const std::string dir = dir_of(from_rel);
    if (!dir.empty()) candidates.push_back(dir + "/" + header);
    candidates.push_back("src/" + header);
    candidates.push_back("tools/" + header);
    candidates.push_back("bench/" + header);
    candidates.push_back("tests/" + header);
    candidates.push_back(header);
    for (const std::string& candidate : candidates) {
      auto it = index_of.find(candidate);
      if (it != index_of.end()) return it->second;
    }
    return std::nullopt;
  };

  std::vector<IncludeEdge> edges;
  std::vector<std::vector<std::size_t>> adjacency(files.size());
  for (std::size_t i = 0; i < files.size(); ++i) {
    for (const auto& [header, line] : quoted_includes(files[i].stripped)) {
      std::optional<std::size_t> target = resolve(files[i].rel, header);
      if (!target || *target == i) continue;
      edges.push_back({i, *target, line});
      adjacency[i].push_back(*target);
    }
  }

  // Back-edges: an include must point at the same or a lower layer.
  for (const IncludeEdge& edge : edges) {
    const int from = layer_of(files[edge.from_index].rel);
    const int to = layer_of(files[edge.to_index].rel);
    if (from < 0 || to < 0) continue;  // exempt or already undeclared
    if (to > from) {
      const std::string& a = files[edge.from_index].rel;
      const std::string& b = files[edge.to_index].rel;
      out.push_back({a, edge.line, "layer-back-edge", a + "->" + b,
                     "'" + a + "' (layer " + std::to_string(from) + ": " +
                         layer_name(from) + ") includes '" + b + "' (layer " +
                         std::to_string(to) + ": " + layer_name(to) +
                         "); includes must point down the layer DAG"});
    }
  }

  // Cycles: iterative DFS over the file-level include graph. Any cycle
  // is an error (same-layer includes are legal only while acyclic).
  std::vector<int> color(files.size(), 0);  // 0 white, 1 grey, 2 black
  std::vector<std::size_t> stack;
  std::set<std::string> reported;
  // Recursion replaced with an explicit stack so fixture trees with deep
  // chains cannot blow the analyzer's own stack.
  struct Frame {
    std::size_t node = 0;
    std::size_t next_child = 0;
  };
  for (std::size_t start = 0; start < files.size(); ++start) {
    if (color[start] != 0) continue;
    std::vector<Frame> frames{{start, 0}};
    color[start] = 1;
    stack.push_back(start);
    while (!frames.empty()) {
      Frame& frame = frames.back();
      if (frame.next_child < adjacency[frame.node].size()) {
        const std::size_t child = adjacency[frame.node][frame.next_child++];
        if (color[child] == 0) {
          color[child] = 1;
          stack.push_back(child);
          frames.push_back({child, 0});
        } else if (color[child] == 1) {
          // Grey child: the stack from `child` to the top is a cycle.
          auto begin = std::find(stack.begin(), stack.end(), child);
          std::vector<std::size_t> cycle(begin, stack.end());
          // Canonical rotation: start at the lexicographically smallest
          // file so the key is stable however the cycle was entered.
          std::size_t min_pos = 0;
          for (std::size_t k = 1; k < cycle.size(); ++k) {
            if (files[cycle[k]].rel < files[cycle[min_pos]].rel) min_pos = k;
          }
          std::rotate(cycle.begin(), cycle.begin() + min_pos, cycle.end());
          std::string key, chain;
          for (std::size_t node : cycle) {
            key += files[node].rel + "->";
            chain += files[node].rel + " -> ";
          }
          key += files[cycle.front()].rel;
          chain += files[cycle.front()].rel;
          if (reported.insert(key).second) {
            out.push_back({files[cycle.front()].rel, 1, "layer-cycle", key,
                           "include cycle: " + chain});
          }
        }
      } else {
        color[frame.node] = 2;
        stack.pop_back();
        frames.pop_back();
      }
    }
  }
}

// ---- Pass 2: annotation audit ----

struct Member {
  std::string name;
  std::size_t line = 0;
};

struct GuardUse {
  std::string target;  // the GUARDED_BY argument, trimmed
  std::size_t line = 0;
};

struct Record {
  std::string name;
  std::vector<Member> mutexes;
  std::vector<Member> condvars;
  std::vector<GuardUse> guards;
};

/// The class-head name: the last identifier before the body that is not
/// a macro invocation (OFFNET_CAPABILITY(...)), `final`, or `alignas`.
std::string class_name(std::string_view head) {
  std::string name;
  for (std::size_t i = 0; i < head.size();) {
    if (!ident_char(head[i])) {
      ++i;
      continue;
    }
    std::size_t end = i;
    while (end < head.size() && ident_char(head[end])) ++end;
    std::string_view token = head.substr(i, end - i);
    std::size_t after = skip_spaces(head, end);
    const bool macro_call = after < head.size() && head[after] == '(';
    const bool numeric =
        std::isdigit(static_cast<unsigned char>(token.front())) != 0;
    if (!macro_call && !numeric && token != "final" && token != "alignas") {
      name.assign(token);
    }
    i = end;
  }
  return name.empty() ? std::string("(anonymous)") : name;
}

/// Parses the `Type name;` member pattern at `pos` (just past the type
/// keyword). Returns the member name, or empty if this is not a plain
/// value member (reference/pointer, method return type, ...).
std::string member_name_after_type(std::string_view code, std::size_t pos) {
  pos = skip_spaces(code, pos);
  if (pos >= code.size() || !ident_char(code[pos]) ||
      std::isdigit(static_cast<unsigned char>(code[pos])) != 0) {
    return {};
  }
  std::size_t end = pos;
  while (end < code.size() && ident_char(code[end])) ++end;
  std::size_t after = skip_spaces(code, end);
  if (after >= code.size() || code[after] != ';') return {};
  return std::string(code.substr(pos, end - pos));
}

void scan_record_body(const SourceFile& file, std::size_t open,
                      std::size_t close, Record& record) {
  const std::string_view code = file.stripped.code;
  int brace_depth = 0;
  int paren_depth = 0;
  for (std::size_t i = open + 1; i < close; ++i) {
    const char c = code[i];
    if (c == '{') ++brace_depth;
    if (c == '}') --brace_depth;
    if (c == '(') ++paren_depth;
    if (c == ')') --paren_depth;
    if (brace_depth != 0) continue;
    if (paren_depth == 0 && word_at(code, i, "Mutex")) {
      std::string name = member_name_after_type(code, i + 5);
      if (!name.empty()) {
        record.mutexes.push_back({name, file.stripped.line_of(i)});
        i += 4;
        continue;
      }
    }
    if (paren_depth == 0 && word_at(code, i, "CondVar")) {
      std::string name = member_name_after_type(code, i + 7);
      if (!name.empty()) {
        record.condvars.push_back({name, file.stripped.line_of(i)});
        i += 6;
        continue;
      }
    }
    for (std::string_view macro :
         {"OFFNET_PT_GUARDED_BY", "OFFNET_GUARDED_BY"}) {
      if (!word_at(code, i, macro)) continue;
      std::size_t paren = skip_spaces(code, i + macro.size());
      if (paren >= close || code[paren] != '(') break;
      std::size_t end = matching_paren(code, paren);
      if (end == std::string_view::npos || end > close) break;
      record.guards.push_back(
          {std::string(trim(code.substr(paren + 1, end - paren - 1))),
           file.stripped.line_of(i)});
      i = end;
      break;
    }
  }
}

void pass_annotations(const std::vector<SourceFile>& files,
                      std::vector<Finding>& out) {
  for (const SourceFile& file : files) {
    if (file.rel.substr(0, 4) != "src/" &&
        file.rel.substr(0, 6) != "tools/") {
      continue;
    }
    const std::string_view code = file.stripped.code;
    for (std::size_t i = 0; i < code.size(); ++i) {
      const bool is_class = word_at(code, i, "class");
      const bool is_struct = !is_class && word_at(code, i, "struct");
      if (!is_class && !is_struct) continue;
      // Skip `template <class T>` parameters and `enum class`.
      std::size_t before = i;
      while (before > 0 &&
             std::isspace(static_cast<unsigned char>(code[before - 1]))) {
        --before;
      }
      if (before > 0 && (code[before - 1] == '<' || code[before - 1] == ',')) {
        continue;
      }
      if (before >= 4 && word_at(code, before - 4, "enum")) continue;
      // Find the head end: body '{', or ';' (forward declaration /
      // `struct tm buf;` usage).
      std::size_t keyword_end = i + (is_class ? 5 : 6);
      std::size_t head_end = keyword_end;
      while (head_end < code.size() && code[head_end] != '{' &&
             code[head_end] != ';' && code[head_end] != '(') {
        ++head_end;
      }
      if (head_end >= code.size() || code[head_end] != '{') continue;
      // Truncate the head at a base-clause ':' (not '::').
      std::string_view head = code.substr(keyword_end,
                                          head_end - keyword_end);
      for (std::size_t k = 0; k + 1 < head.size(); ++k) {
        if (head[k] != ':') continue;
        if (head[k + 1] == ':' || (k > 0 && head[k - 1] == ':')) {
          ++k;
          continue;
        }
        head = head.substr(0, k);
        break;
      }
      // Matching close brace.
      int depth = 0;
      std::size_t body_close = head_end;
      while (body_close < code.size()) {
        if (code[body_close] == '{') ++depth;
        if (code[body_close] == '}' && --depth == 0) break;
        ++body_close;
      }
      if (body_close >= code.size()) continue;

      Record record;
      record.name = class_name(head);
      scan_record_body(file, head_end, body_close, record);

      auto is_mutex = [&](std::string_view target) {
        for (const Member& mutex : record.mutexes) {
          if (mutex.name == target) return true;
        }
        return false;
      };
      for (const GuardUse& guard : record.guards) {
        if (!is_mutex(guard.target)) {
          out.push_back(
              {file.rel, guard.line, "guard-dangling",
               file.rel + ":" + record.name + "::" + guard.target,
               "OFFNET_GUARDED_BY(" + guard.target + ") in " + record.name +
                   " names no core::Mutex member of that class — the "
                   "annotation is a silent no-op"});
        }
      }
      for (const Member& mutex : record.mutexes) {
        bool covered = false;
        for (const GuardUse& guard : record.guards) {
          if (guard.target == mutex.name) {
            covered = true;
            break;
          }
        }
        if (!covered) {
          out.push_back(
              {file.rel, mutex.line, "mutex-unguarded",
               file.rel + ":" + record.name + "::" + mutex.name,
               "core::Mutex member '" + mutex.name + "' of " + record.name +
                   " guards no field — annotate the protected state with "
                   "OFFNET_GUARDED_BY(" + mutex.name +
                   ") or justify why the lock has no lockable state"});
        }
      }
      if (!record.condvars.empty() && record.guards.empty()) {
        const Member& cv = record.condvars.front();
        out.push_back(
            {file.rel, cv.line, "condvar-unguarded",
             file.rel + ":" + record.name + "::" + cv.name,
             "class " + record.name + " has a core::CondVar ('" + cv.name +
                 "') but no OFFNET_GUARDED_BY state at all — a condvar "
                 "predicate must live under its mutex"});
      }
    }
  }
}

// ---- Pass 3: registry consistency ----

struct Constant {
  std::string name;
  std::string value;
  std::string file;
  std::size_t line = 0;
};

/// Parses `kName = "value"` pairs inside every `namespace <ns> { ... }`
/// block of a file. Values come from `directives` (literals preserved);
/// structure from `code`.
std::vector<Constant> namespace_constants(const SourceFile& file,
                                          std::string_view ns) {
  std::vector<Constant> out;
  const std::string_view code = file.stripped.code;
  const std::string_view directives = file.stripped.directives;
  for (std::size_t i = 0; i < code.size(); ++i) {
    if (!word_at(code, i, "namespace")) continue;
    std::size_t name_pos = skip_spaces(code, i + 9);
    if (!word_at(code, name_pos, ns)) continue;
    std::size_t open = skip_spaces(code, name_pos + ns.size());
    if (open >= code.size() || code[open] != '{') continue;
    int depth = 0;
    std::size_t close = open;
    while (close < code.size()) {
      if (code[close] == '{') ++depth;
      if (code[close] == '}' && --depth == 0) break;
      ++close;
    }
    for (std::size_t k = open; k < close && k < code.size(); ++k) {
      if (code[k] != '=') continue;
      // Identifier before '='.
      std::size_t name_end = k;
      while (name_end > open &&
             std::isspace(static_cast<unsigned char>(code[name_end - 1]))) {
        --name_end;
      }
      std::size_t name_begin = name_end;
      while (name_begin > open && ident_char(code[name_begin - 1])) {
        --name_begin;
      }
      if (name_begin == name_end) continue;
      // First string literal after '=' (before ';').
      std::size_t quote = std::string_view::npos;
      for (std::size_t v = k + 1; v < close; ++v) {
        if (code[v] == ';') break;
        if (directives[v] == '"') {
          quote = v;
          break;
        }
      }
      if (quote == std::string_view::npos) continue;
      std::size_t quote_end = quote + 1;
      while (quote_end < directives.size() && directives[quote_end] != '"') {
        if (directives[quote_end] == '\\') ++quote_end;
        ++quote_end;
      }
      if (quote_end >= directives.size()) continue;
      out.push_back({std::string(code.substr(name_begin,
                                             name_end - name_begin)),
                     std::string(directives.substr(quote + 1,
                                                   quote_end - quote - 1)),
                     file.rel, file.stripped.line_of(quote)});
      k = quote_end;
    }
    i = close;
  }
  return out;
}

struct CallLiteral {
  std::string value;
  std::size_t line = 0;
};

/// The string literal that IS the call's n-th (0-based) top-level
/// argument, if that argument starts with one. A literal buried in a
/// nested call (`fail_at(stage, parse_count(args, "flag"))`) is some
/// other function's business and must not be attributed to this call.
std::optional<CallLiteral> arg_literal(const SourceFile& file,
                                       std::size_t open, std::size_t n) {
  const std::string_view code = file.stripped.code;
  const std::string_view directives = file.stripped.directives;
  std::size_t close = matching_paren(code, open);
  if (close == std::string_view::npos) return std::nullopt;
  // Walk to the n-th top-level comma boundary.
  std::size_t arg_start = open + 1;
  std::size_t arg_index = 0;
  int depth = 0;
  for (std::size_t i = open + 1; i < close && arg_index < n; ++i) {
    const char c = code[i];
    if (c == '(' || c == '[' || c == '{') ++depth;
    if (c == ')' || c == ']' || c == '}') --depth;
    if (c == ',' && depth == 0) {
      ++arg_index;
      arg_start = i + 1;
    }
  }
  if (arg_index != n) return std::nullopt;
  std::size_t i = skip_spaces(directives, arg_start);
  if (i >= close || directives[i] != '"') return std::nullopt;
  std::size_t end = i + 1;
  while (end < close && directives[end] != '"') {
    if (directives[end] == '\\') ++end;
    ++end;
  }
  if (end >= close) return std::nullopt;
  return CallLiteral{std::string(directives.substr(i + 1, end - i - 1)),
                     file.stripped.line_of(i)};
}

bool member_call_at(std::string_view code, std::size_t pos) {
  while (pos > 0 &&
         std::isspace(static_cast<unsigned char>(code[pos - 1]))) {
    --pos;
  }
  return (pos >= 1 && code[pos - 1] == '.') ||
         (pos >= 2 && code[pos - 2] == '-' && code[pos - 1] == '>');
}

/// Obs call sites: registry.counter("...") / gauge / histogram /
/// record_timing member calls, and StageTimer constructions.
std::vector<CallLiteral> metric_call_literals(const SourceFile& file) {
  std::vector<CallLiteral> out;
  const std::string_view code = file.stripped.code;
  for (std::size_t i = 0; i < code.size(); ++i) {
    std::size_t open = std::string_view::npos;
    std::size_t name_arg = 0;
    for (std::string_view method :
         {"counter", "gauge", "histogram", "record_timing"}) {
      if (!word_at(code, i, method)) continue;
      if (!member_call_at(code, i)) break;
      std::size_t paren = skip_spaces(code, i + method.size());
      if (paren < code.size() && code[paren] == '(') open = paren;
      break;
    }
    if (open == std::string_view::npos && word_at(code, i, "StageTimer")) {
      // `StageTimer t(reg, "stage")` or `StageTimer(reg, "stage")`:
      // the stage name is the second argument.
      std::size_t pos = skip_spaces(code, i + 10);
      if (pos < code.size() && ident_char(code[pos])) {
        while (pos < code.size() && ident_char(code[pos])) ++pos;
        pos = skip_spaces(code, pos);
      }
      if (pos < code.size() && code[pos] == '(') {
        open = pos;
        name_arg = 1;
      }
    }
    if (open == std::string_view::npos) continue;
    if (std::optional<CallLiteral> literal =
            arg_literal(file, open, name_arg)) {
      out.push_back(*literal);
    }
    i = open;
  }
  return out;
}

/// FaultInjector call sites: .on("..."), .on_sys("..."),
/// .fail_at("..."), .fail_with_errno("..."), .fail_randomly("...").
std::vector<CallLiteral> fault_call_literals(const SourceFile& file) {
  std::vector<CallLiteral> out;
  const std::string_view code = file.stripped.code;
  for (std::size_t i = 0; i < code.size(); ++i) {
    for (std::string_view method :
         {"on_sys", "on", "fail_at", "fail_with_errno", "fail_randomly"}) {
      if (!word_at(code, i, method)) continue;
      if (!member_call_at(code, i)) break;
      std::size_t paren = skip_spaces(code, i + method.size());
      if (paren >= code.size() || code[paren] != '(') break;
      if (std::optional<CallLiteral> literal = arg_literal(file, paren, 0)) {
        out.push_back(*literal);
      }
      i = paren;
      break;
    }
  }
  return out;
}

/// True when identifier `name` occurs anywhere outside `skip_file`'s
/// declaration line.
bool identifier_used(const std::vector<SourceFile>& files,
                     std::string_view name, const std::string& decl_file,
                     std::size_t decl_line) {
  for (const SourceFile& file : files) {
    const std::string_view code = file.stripped.code;
    for (std::size_t i = 0; i < code.size(); ++i) {
      if (code[i] != name.front() || !word_at(code, i, name)) continue;
      if (file.rel == decl_file &&
          file.stripped.line_of(i) == decl_line) {
        i += name.size();
        continue;
      }
      return true;
    }
  }
  return false;
}

/// True when the exact quoted literal `"value"` occurs outside the
/// declaration line (a test asserting on the emitted name counts as a
/// use — it pins the registry value).
bool literal_used(const std::vector<SourceFile>& files,
                  const std::string& value, const std::string& decl_file,
                  std::size_t decl_line) {
  const std::string quoted = "\"" + value + "\"";
  for (const SourceFile& file : files) {
    const std::string& directives = file.stripped.directives;
    std::size_t pos = 0;
    while ((pos = directives.find(quoted, pos)) != std::string::npos) {
      if (!(file.rel == decl_file &&
            file.stripped.line_of(pos) == decl_line)) {
        return true;
      }
      pos += quoted.size();
    }
  }
  return false;
}

int parse_int_at(std::string_view code, std::size_t pos, int* value) {
  std::size_t end = pos;
  while (end < code.size() &&
         std::isdigit(static_cast<unsigned char>(code[end])) != 0) {
    ++end;
  }
  if (end == pos) return 0;
  if (end < code.size() && ident_char(code[end])) return 0;  // 70u, 0x...
  *value = 0;
  for (std::size_t i = pos; i < end; ++i) *value = *value * 10 + (code[i] - '0');
  return static_cast<int>(end - pos);
}

void pass_registries(const std::vector<SourceFile>& files,
                     std::vector<Finding>& out) {
  // -- Metric names --
  std::vector<Constant> metrics;
  for (const SourceFile& file : files) {
    for (Constant& constant : namespace_constants(file, "metric_names")) {
      metrics.push_back(std::move(constant));
    }
  }
  std::map<std::string, const Constant*> by_value;
  for (const Constant& constant : metrics) {
    auto [it, inserted] = by_value.emplace(constant.value, &constant);
    if (!inserted) {
      out.push_back({constant.file, constant.line, "metric-duplicate",
                     constant.value,
                     "metric value \"" + constant.value + "\" is declared "
                     "both as " + it->second->name + " (" +
                         it->second->file + ") and " + constant.name +
                         " — one registry constant per name"});
    }
  }
  auto declared_match = [&](const std::string& literal) -> const Constant* {
    auto it = by_value.find(literal);
    if (it != by_value.end()) return it->second;
    for (const Constant& constant : metrics) {
      if (!constant.value.empty() && constant.value.back() == '/' &&
          literal.size() > constant.value.size() &&
          literal.compare(0, constant.value.size(), constant.value) == 0) {
        return &constant;
      }
    }
    return nullptr;
  };
  for (const SourceFile& file : files) {
    if (file.rel == "tests/obs_test.cpp") continue;  // registry unit tests
    const bool is_test = file.rel.substr(0, 6) == "tests/";
    for (const CallLiteral& literal : metric_call_literals(file)) {
      const Constant* match = declared_match(literal.value);
      if (is_test) {
        if (match == nullptr) {
          out.push_back({file.rel, literal.line, "metric-undeclared",
                         file.rel + ":" + literal.value,
                         "metric \"" + literal.value + "\" matches no "
                         "metric_names constant or prefix — tests may only "
                         "assert on registered names"});
        }
        continue;
      }
      if (match != nullptr) {
        out.push_back({file.rel, literal.line, "metric-bypass",
                       file.rel + ":" + literal.value,
                       "metric literal \"" + literal.value +
                           "\" duplicates " + match->name + " (" +
                           match->file + "); use the registry constant"});
      } else {
        out.push_back({file.rel, literal.line, "metric-undeclared",
                       file.rel + ":" + literal.value,
                       "metric \"" + literal.value + "\" is not declared "
                       "in any metric_names namespace; register it beside "
                       "its subsystem's other names"});
      }
    }
  }
  for (const Constant& constant : metrics) {
    if (identifier_used(files, constant.name, constant.file,
                        constant.line) ||
        literal_used(files, constant.value, constant.file, constant.line)) {
      continue;
    }
    out.push_back({constant.file, constant.line, "metric-dead",
                   constant.name,
                   "metric constant " + constant.name + " (\"" +
                       constant.value + "\") is never used"});
  }

  // -- Fault stages --
  std::vector<Constant> stages;
  for (const SourceFile& file : files) {
    for (Constant& constant : namespace_constants(file, "fault_stage")) {
      stages.push_back(std::move(constant));
    }
  }
  std::map<std::string, const Constant*> stage_by_value;
  for (const Constant& constant : stages) {
    stage_by_value.emplace(constant.value, &constant);
  }
  for (const SourceFile& file : files) {
    if (file.rel.substr(0, 4) != "src/" &&
        file.rel.substr(0, 6) != "tools/") {
      continue;  // tests configure injectors with literal plans freely
    }
    if (!stages.empty() && file.rel == stages.front().file) continue;
    for (const CallLiteral& literal : fault_call_literals(file)) {
      auto it = stage_by_value.find(literal.value);
      if (it != stage_by_value.end()) {
        out.push_back({file.rel, literal.line, "fault-stage-bypass",
                       file.rel + ":" + literal.value,
                       "fault stage literal \"" + literal.value +
                           "\" duplicates " + it->second->name + " (" +
                           it->second->file +
                           "); use the fault_stage constant"});
      } else if (!stages.empty()) {
        out.push_back({file.rel, literal.line, "fault-stage-undeclared",
                       file.rel + ":" + literal.value,
                       "fault stage \"" + literal.value + "\" is not "
                       "declared in core::fault_stage — an undeclared "
                       "stage never fires under any plan"});
      }
    }
  }
  for (const Constant& constant : stages) {
    if (identifier_used(files, constant.name, constant.file,
                        constant.line) ||
        literal_used(files, constant.value, constant.file, constant.line)) {
      continue;
    }
    out.push_back({constant.file, constant.line, "fault-stage-dead",
                   constant.name,
                   "fault stage constant " + constant.name + " (\"" +
                       constant.value + "\") is never crossed or armed"});
  }

  // -- Sweep coverage --
  //
  // The chaos harness's sweep table must name every registered stage:
  // a stage that exists but is absent from tools/offnet_chaos.cpp has
  // fault cells no sweep will ever visit. Keyed on the identifier (the
  // kSweep rows spell out the fault_stage constants) so renaming the
  // string value alone cannot fake coverage. Skipped when the harness
  // is not part of the analyzed tree (fixture runs).
  const SourceFile* chaos = nullptr;
  for (const SourceFile& file : files) {
    if (filename_of(file.rel) == "offnet_chaos.cpp") chaos = &file;
  }
  if (chaos != nullptr) {
    for (const Constant& constant : stages) {
      const std::string_view code = chaos->stripped.code;
      bool swept = false;
      for (std::size_t i = 0; i < code.size() && !swept; ++i) {
        swept = code[i] == constant.name.front() &&
                word_at(code, i, constant.name);
      }
      if (!swept) {
        out.push_back({constant.file, constant.line, "fault-stage-unswept",
                       constant.name,
                       "fault stage constant " + constant.name + " (\"" +
                           constant.value + "\") is missing from the " +
                           chaos->rel + " sweep table — its fault space "
                           "is never exercised"});
      }
    }
  }

  // -- Exit codes --
  struct IntConstant {
    std::string name;
    int value = 0;
    std::string file;
    std::size_t line = 0;
  };
  std::vector<IntConstant> codes;
  int abort_code = -1;
  for (const SourceFile& file : files) {
    if (filename_of(file.rel) != "exit_codes.h") continue;
    const std::string_view code = file.stripped.code;
    for (std::size_t i = 0; i < code.size(); ++i) {
      if (code[i] != 'k' || !ident_char(code[i]) ||
          (i > 0 && ident_char(code[i - 1]))) {
        continue;
      }
      std::size_t end = i;
      while (end < code.size() && ident_char(code[end])) ++end;
      std::size_t eq = skip_spaces(code, end);
      if (eq >= code.size() || code[eq] != '=') continue;
      std::size_t digits = skip_spaces(code, eq + 1);
      int value = 0;
      if (parse_int_at(code, digits, &value) == 0) continue;
      codes.push_back({std::string(code.substr(i, end - i)), value,
                       file.rel, file.stripped.line_of(i)});
      i = end;
    }
  }
  for (const SourceFile& file : files) {
    const std::string_view code = file.stripped.code;
    std::size_t pos = 0;
    while ((pos = code.find("kAbortExitCode", pos)) != std::string::npos) {
      std::size_t eq = skip_spaces(code, pos + 14);
      if (eq < code.size() && code[eq] == '=') {
        int value = 0;
        if (parse_int_at(code, skip_spaces(code, eq + 1), &value) != 0) {
          abort_code = value;
        }
      }
      pos += 14;
    }
  }
  for (const IntConstant& code_constant : codes) {
    if (code_constant.name == "kExitCrashInjected" && abort_code >= 0 &&
        code_constant.value != abort_code) {
      out.push_back(
          {code_constant.file, code_constant.line, "exit-code-mismatch",
           "kExitCrashInjected",
           "kExitCrashInjected is " + std::to_string(code_constant.value) +
               " but core::FaultInjector::kAbortExitCode is " +
               std::to_string(abort_code) +
               " — the crash-resume tests key on these agreeing"});
    }
    if (!identifier_used(files, code_constant.name, code_constant.file,
                         code_constant.line)) {
      out.push_back(
          {code_constant.file, code_constant.line, "exit-code-dead",
           code_constant.name,
           "exit code " + code_constant.name + " (" +
               std::to_string(code_constant.value) + ") is never used"});
    }
  }
  std::set<int> named_values;
  for (const IntConstant& code_constant : codes) {
    if (code_constant.value >= 64) named_values.insert(code_constant.value);
  }
  if (abort_code >= 64) named_values.insert(abort_code);
  for (const SourceFile& file : files) {
    if (file.rel.substr(0, 4) != "src/" &&
        file.rel.substr(0, 6) != "tools/" &&
        file.rel.substr(0, 6) != "bench/") {
      continue;
    }
    if (filename_of(file.rel) == "exit_codes.h" ||
        filename_of(file.rel) == "fault.h") {
      continue;  // the declaring registries
    }
    const std::string_view code = file.stripped.code;
    const bool is_main_tree = file.rel.substr(0, 6) == "tools/" ||
                              file.rel.substr(0, 6) == "bench/";
    for (std::size_t i = 0; i < code.size(); ++i) {
      std::size_t digits = std::string_view::npos;
      std::string_view what;
      for (std::string_view call : {"_Exit", "exit"}) {
        if (!word_at(code, i, call)) continue;
        std::size_t paren = skip_spaces(code, i + call.size());
        if (paren >= code.size() || code[paren] != '(') break;
        digits = skip_spaces(code, paren + 1);
        what = call;
        break;
      }
      if (digits == std::string_view::npos && is_main_tree &&
          word_at(code, i, "return")) {
        std::size_t value_pos = skip_spaces(code, i + 6);
        int value = 0;
        int len = parse_int_at(code, value_pos, &value);
        std::size_t semi =
            len != 0 ? skip_spaces(code, value_pos + len) : code.size();
        if (len != 0 && semi < code.size() && code[semi] == ';') {
          digits = value_pos;
          what = "return";
        }
      }
      if (digits == std::string_view::npos) continue;
      int value = 0;
      if (parse_int_at(code, digits, &value) == 0) continue;
      if (named_values.count(value) == 0) continue;
      std::string name;
      for (const IntConstant& code_constant : codes) {
        if (code_constant.value == value) {
          name = code_constant.name;
          break;
        }
      }
      out.push_back(
          {file.rel, file.stripped.line_of(i), "exit-code-literal",
           file.rel + ":" + std::string(what) + "(" +
               std::to_string(value) + ")",
           std::string(what) + " with bare exit status " +
               std::to_string(value) + "; use tools::" + name +
               " from exit_codes.h"});
      i = digits;
    }
  }
}

}  // namespace

std::string format(const Finding& finding) {
  return finding.file + ":" + std::to_string(finding.line) + ": " +
         finding.rule + ": " + finding.message + " [" + finding.key + "]";
}

std::string repo_relative(const std::string& path) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  std::string normalized = path;
  std::replace(normalized.begin(), normalized.end(), '\\', '/');
  while (start <= normalized.size()) {
    std::size_t end = normalized.find('/', start);
    if (end == std::string::npos) end = normalized.size();
    if (end > start) parts.push_back(normalized.substr(start, end - start));
    start = end + 1;
  }
  std::size_t anchor = parts.size();
  for (std::size_t i = parts.size(); i-- > 0;) {
    if (parts[i] == "src" || parts[i] == "tools" || parts[i] == "tests" ||
        parts[i] == "bench") {
      anchor = i;
      break;
    }
  }
  if (anchor == parts.size()) {
    return parts.empty() ? path : parts.back();
  }
  std::string out;
  for (std::size_t i = anchor; i < parts.size(); ++i) {
    if (!out.empty()) out += '/';
    out += parts[i];
  }
  return out;
}

std::vector<Finding> analyze_tree(const std::vector<std::string>& roots) {
  std::vector<fs::path> paths;
  auto analyzable = [](const fs::path& p) {
    const std::string ext = p.extension().string();
    return ext == ".h" || ext == ".hpp" || ext == ".cpp" || ext == ".cc";
  };
  auto skip_dir = [](const fs::path& p) {
    const std::string name = p.filename().string();
    return name == ".git" || name == "lint_fixtures" ||
           name == "analyze_fixtures" || name == "golden" ||
           name.substr(0, 5) == "build";
  };
  for (const std::string& root : roots) {
    fs::path base(root);
    if (fs::is_regular_file(base)) {
      if (analyzable(base)) paths.push_back(base);
      continue;
    }
    if (!fs::is_directory(base)) continue;
    fs::recursive_directory_iterator it(base), end;
    while (it != end) {
      if (it->is_directory() && skip_dir(it->path())) {
        it.disable_recursion_pending();
      } else if (it->is_regular_file() && analyzable(it->path())) {
        paths.push_back(it->path());
      }
      ++it;
    }
  }

  std::map<std::string, SourceFile> by_rel;
  for (const fs::path& path : paths) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    std::string rel = repo_relative(path.generic_string());
    by_rel[rel] = SourceFile{rel, strip(buffer.str())};
  }
  std::vector<SourceFile> files;
  files.reserve(by_rel.size());
  for (auto& [rel, file] : by_rel) files.push_back(std::move(file));

  Suppressions suppressions;
  for (const SourceFile& file : files) {
    parse_suppressions(file, suppressions);
  }

  std::vector<Finding> raw;
  pass_layering(files, raw);
  pass_annotations(files, raw);
  pass_registries(files, raw);

  std::vector<Finding> out;
  for (Finding& finding : raw) {
    if (!suppressions.allows(finding.file, finding.line, finding.rule)) {
      out.push_back(std::move(finding));
    }
  }
  // Suppression rot, mirroring offnet_lint: unconsumed grants are
  // findings themselves; allow(stale-suppression) may grandfather one
  // and is then checked for rot in turn.
  std::vector<Finding> stale;
  for (auto& [rel, lines] : suppressions.by_file) {
    for (auto& [line, grants] : lines) {
      for (const Suppression& grant : grants) {
        if (grant.used || grant.rule == "stale-suppression") continue;
        stale.push_back({rel, grant.comment_line, "stale-suppression",
                         rel + ":" + grant.rule,
                         "suppression of '" + grant.rule +
                             "' no longer matches a finding; remove the "
                             "allow() comment"});
      }
    }
  }
  for (Finding& finding : stale) {
    if (!suppressions.allows(finding.file, finding.line, finding.rule)) {
      out.push_back(std::move(finding));
    }
  }
  for (auto& [rel, lines] : suppressions.by_file) {
    for (auto& [line, grants] : lines) {
      for (const Suppression& grant : grants) {
        if (grant.used || grant.rule != "stale-suppression") continue;
        out.push_back({rel, grant.comment_line, "stale-suppression",
                       rel + ":stale-suppression",
                       "suppression of 'stale-suppression' no longer "
                       "matches a finding; remove the allow() comment"});
      }
    }
  }
  out.insert(out.end(), suppressions.errors.begin(),
             suppressions.errors.end());
  std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    return std::tie(a.file, a.line, a.rule, a.key) <
           std::tie(b.file, b.line, b.rule, b.key);
  });
  out.erase(std::unique(out.begin(), out.end(),
                        [](const Finding& a, const Finding& b) {
                          return a.file == b.file && a.line == b.line &&
                                 a.rule == b.rule && a.key == b.key;
                        }),
            out.end());
  return out;
}

Baseline parse_baseline(const std::string& path, std::string_view text) {
  Baseline out;
  std::size_t lineno = 0;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    std::string_view line = trim(text.substr(start, end - start));
    ++lineno;
    start = end + 1;
    if (line.empty() || line.front() == '#') continue;
    std::size_t hash = line.find(" # ");
    if (hash == std::string_view::npos) {
      out.errors.push_back(
          {path, lineno, "stale-baseline",
           path + ":" + std::to_string(lineno),
           "baseline entry needs 'rule-id key # justification'"});
      continue;
    }
    std::string_view head = trim(line.substr(0, hash));
    std::string_view justification = trim(line.substr(hash + 3));
    std::size_t space = head.find_first_of(" \t");
    if (space == std::string_view::npos || justification.empty()) {
      out.errors.push_back(
          {path, lineno, "stale-baseline",
           path + ":" + std::to_string(lineno),
           "baseline entry needs 'rule-id key # justification'"});
      continue;
    }
    std::string rule(trim(head.substr(0, space)));
    std::string key(trim(head.substr(space + 1)));
    if (!known_rule(rule)) {
      out.errors.push_back({path, lineno, "stale-baseline",
                            path + ":" + std::to_string(lineno),
                            "unknown rule id '" + rule + "' in baseline"});
      continue;
    }
    out.entries.push_back({lineno, rule, key,
                           std::string(justification)});
  }
  return out;
}

std::vector<Finding> apply_baseline(std::vector<Finding> findings,
                                    const Baseline& baseline,
                                    const std::string& baseline_path) {
  std::vector<bool> used(baseline.entries.size(), false);
  std::vector<Finding> out;
  for (Finding& finding : findings) {
    bool matched = false;
    for (std::size_t i = 0; i < baseline.entries.size(); ++i) {
      if (baseline.entries[i].rule == finding.rule &&
          baseline.entries[i].key == finding.key) {
        used[i] = true;
        matched = true;
      }
    }
    if (!matched) out.push_back(std::move(finding));
  }
  for (std::size_t i = 0; i < baseline.entries.size(); ++i) {
    if (used[i]) continue;
    const BaselineEntry& entry = baseline.entries[i];
    out.push_back({baseline_path, entry.line, "stale-baseline",
                   entry.rule + " " + entry.key,
                   "baseline entry '" + entry.rule + " " + entry.key +
                       "' matches no current finding; the baseline may "
                       "only shrink — delete the line"});
  }
  out.insert(out.end(), baseline.errors.begin(), baseline.errors.end());
  std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    return std::tie(a.file, a.line, a.rule, a.key) <
           std::tie(b.file, b.line, b.rule, b.key);
  });
  return out;
}

std::string render_baseline(const std::vector<Finding>& findings,
                            const Baseline& previous) {
  std::vector<const Finding*> sorted;
  sorted.reserve(findings.size());
  for (const Finding& finding : findings) sorted.push_back(&finding);
  std::sort(sorted.begin(), sorted.end(),
            [](const Finding* a, const Finding* b) {
              return std::tie(a->rule, a->key) < std::tie(b->rule, b->key);
            });
  sorted.erase(std::unique(sorted.begin(), sorted.end(),
                           [](const Finding* a, const Finding* b) {
                             return a->rule == b->rule && a->key == b->key;
                           }),
               sorted.end());
  std::string out =
      "# offnet_analyze baseline — grandfathered findings, one per line:\n"
      "#   rule-id key # justification\n"
      "# A line matching no current finding is itself an error\n"
      "# (stale-baseline): this file may only shrink. Regenerate with\n"
      "#   offnet_analyze --baseline <this file> --fix-baseline <roots>\n";
  for (const Finding* finding : sorted) {
    std::string justification = "TODO(reviewer): justify";
    for (const BaselineEntry& entry : previous.entries) {
      if (entry.rule == finding->rule && entry.key == finding->key) {
        justification = entry.justification;
        break;
      }
    }
    out += finding->rule + " " + finding->key + " # " + justification +
           "\n";
  }
  return out;
}

}  // namespace offnet::analyze
