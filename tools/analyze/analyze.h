#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

/// offnet_analyze: the whole-program semantic analyzer (DESIGN.md §13).
/// Where offnet_lint judges one token stream at a time, this tool parses
/// the entire tree and checks cross-file structure in three passes:
///
/// Pass 1 — layering. Every repo file belongs to a declared layer:
///   0 base           src/core primitives (mutex, annotations, thread
///                    pool, pinned, fault)
///   1 util           src/net, src/obs
///   2 domain         src/io src/tls src/dns src/http src/bgp
///                    src/topology, plus src/scan/record.* (pure data
///                    model, no scan logic)
///   3 model          src/scan, src/hypergiant
///   4 orchestration  src/core pipeline/longitudinal/checkpoint/
///                    delta_cache/header_learner/known_headers/
///                    tls_fingerprint, plus src/analysis
///   5 service        src/svc
///   6 tools          tools/, bench/
/// tests/ may include anything. Rules:
///   layer-back-edge  an include pointing UP the DAG (lower layer pulls
///                    in a higher one)
///   layer-cycle      a file-level include cycle (chain printed)
///   layer-undeclared a src/ file outside every declared layer — new
///                    directories/core files must be added to the table
///
/// Pass 2 — annotation audit (src/ and tools/). Symbol-aware: classes
/// and their members are parsed, so the Clang thread-safety macros from
/// core/thread_annotations.h (silent no-ops on GCC) cannot rot:
///   mutex-unguarded    a core::Mutex member that guards no field — no
///                      OFFNET_GUARDED_BY in the class names it
///   condvar-unguarded  a class with a core::CondVar but no guarded
///                      state at all (a condvar without a predicate
///                      under its mutex is always a bug)
///   guard-dangling     OFFNET_GUARDED_BY(mu) naming no Mutex member of
///                      the same class
///
/// Pass 3 — registry consistency. The shared registries (obs metric
/// names in `metric_names` namespaces, core::fault_stage, and
/// tools/exit_codes.h) are each the single source of truth:
///   metric-bypass        a string literal at an obs call site
///                        (counter/gauge/histogram/record_timing/
///                        StageTimer) in src/tools/bench duplicating a
///                        declared name — use the constant
///   metric-undeclared    such a literal matching no declared name or
///                        prefix (tests/obs_test.cpp is exempt: it
///                        unit-tests the registry itself)
///   metric-dead          a declared metric constant nothing references
///   metric-duplicate     two metric constants with the same value
///   fault-stage-bypass   a literal stage string at a FaultInjector
///                        call site in src/tools duplicating a declared
///                        fault_stage constant
///   fault-stage-undeclared  a literal stage at a FaultInjector call
///                        site in src/tools that no constant declares
///   fault-stage-dead     a declared fault_stage constant never used
///   exit-code-literal    exit()/_Exit()/return with a bare integer
///                        that tools/exit_codes.h names
///   exit-code-dead       a declared kExit* constant never used
///   exit-code-mismatch   kExitCrashInjected out of sync with
///                        core::FaultInjector::kAbortExitCode
///
/// Grandfathered findings live in a baseline file (one
/// `rule-id key # justification` per line; the justification is
/// mandatory). A baseline entry matching no current finding is itself an
/// error (`stale-baseline`), so the file can only shrink. Inline
/// `// offnet-analyze: allow(rule-id): justification` comments work like
/// offnet_lint suppressions (trailing covers its own line, standalone
/// covers the next), with the same bad-suppression / stale-suppression
/// policing.
namespace offnet::analyze {

struct Finding {
  std::string file;  // repo-relative
  std::size_t line = 0;  // 1-based
  std::string rule;
  std::string key;  // stable, line-insensitive identity for baselining
  std::string message;
};

/// "file:line: rule-id: message [key]"
std::string format(const Finding& finding);

/// Maps an absolute or build-relative path onto the repo-relative form
/// used in findings and keys: everything from the last `src`, `tools`,
/// `tests`, or `bench` path component on. Fixture trees therefore look
/// like miniature repos (".../analyze_fixtures/back_edge/src/net/util.h"
/// reports as "src/net/util.h").
std::string repo_relative(const std::string& path);

/// Walks the given roots (directories or single files), runs all three
/// passes over every .h/.hpp/.cpp/.cc, applies inline suppressions, and
/// returns findings sorted by file, line, rule. Directories named
/// "build*", ".git", "lint_fixtures", "analyze_fixtures", and "golden"
/// are skipped.
std::vector<Finding> analyze_tree(const std::vector<std::string>& roots);

struct BaselineEntry {
  std::size_t line = 0;  // line in the baseline file
  std::string rule;
  std::string key;
  std::string justification;
};

struct Baseline {
  std::vector<BaselineEntry> entries;
  std::vector<Finding> errors;  // malformed lines, as stale-baseline
};

/// Parses a baseline file body. `path` labels error findings.
Baseline parse_baseline(const std::string& path, std::string_view text);

/// Drops findings matched by a baseline entry; appends a stale-baseline
/// finding for every entry that matched nothing (the baseline may only
/// shrink) and for every parse error.
std::vector<Finding> apply_baseline(std::vector<Finding> findings,
                                    const Baseline& baseline,
                                    const std::string& baseline_path);

/// Renders `findings` as a baseline file body (sorted by rule then key),
/// carrying justifications over from `previous` where rule+key still
/// match and stamping "TODO(reviewer): justify" on new entries.
std::string render_baseline(const std::vector<Finding>& findings,
                            const Baseline& previous);

}  // namespace offnet::analyze
