#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analyze.h"

namespace {

bool read_file(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

}  // namespace

/// offnet_analyze — whole-program semantic analysis (DESIGN.md §13):
/// layer DAG, thread-safety-annotation audit, registry consistency.
///
/// Usage: offnet_analyze [--baseline FILE] [--fix-baseline] [--quiet]
///                       <dir-or-file>...
/// Exit codes: 0 clean, 1 findings, 2 usage error.
int main(int argc, char** argv) {
  bool quiet = false;
  bool fix_baseline = false;
  std::string baseline_path;
  std::vector<std::string> roots;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quiet" || arg == "-q") {
      quiet = true;
    } else if (arg == "--fix-baseline") {
      fix_baseline = true;
    } else if (arg == "--baseline") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "offnet_analyze: --baseline needs a file\n");
        return 2;
      }
      baseline_path = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      std::puts(
          "usage: offnet_analyze [--baseline FILE] [--fix-baseline] "
          "[--quiet] <dir-or-file>...\n"
          "Cross-file semantic checks: layering DAG, OFFNET_GUARDED_BY\n"
          "coverage, metric/fault-stage/exit-code registry consistency\n"
          "(see DESIGN.md §13).\n"
          "--baseline FILE      grandfathered findings (rule-id key # why)\n"
          "--fix-baseline       rewrite FILE from the current findings\n"
          "Suppress one line with: "
          "// offnet-analyze: allow(rule-id): justification");
      return 0;
    } else if (!arg.empty() && arg.front() == '-') {
      std::fprintf(stderr, "offnet_analyze: unknown option '%s'\n",
                   arg.c_str());
      return 2;
    } else {
      roots.push_back(arg);
    }
  }
  if (roots.empty()) {
    std::fprintf(stderr,
                 "usage: offnet_analyze [--baseline FILE] [--fix-baseline] "
                 "[--quiet] <dir-or-file>...\n");
    return 2;
  }
  if (fix_baseline && baseline_path.empty()) {
    std::fprintf(stderr,
                 "offnet_analyze: --fix-baseline needs --baseline FILE\n");
    return 2;
  }

  std::vector<offnet::analyze::Finding> findings =
      offnet::analyze::analyze_tree(roots);

  offnet::analyze::Baseline baseline;
  if (!baseline_path.empty()) {
    std::string text;
    if (!read_file(baseline_path, &text) && !fix_baseline) {
      std::fprintf(stderr, "offnet_analyze: cannot read baseline '%s'\n",
                   baseline_path.c_str());
      return 2;
    }
    baseline = offnet::analyze::parse_baseline(baseline_path, text);
  }

  if (fix_baseline) {
    const std::string body =
        offnet::analyze::render_baseline(findings, baseline);
    // The baseline is developer state, not a run artifact: a torn write
    // is recoverable by rerunning --fix-baseline, and the analyzer must
    // stay dependency-free (no offnet_io link).
    // offnet-lint: allow(raw-artifact-write): see comment above
    std::ofstream out(baseline_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "offnet_analyze: cannot write baseline '%s'\n",
                   baseline_path.c_str());
      return 2;
    }
    out << body;
    out.flush();
    if (!out) {
      std::fprintf(stderr, "offnet_analyze: short write to '%s'\n",
                   baseline_path.c_str());
      return 2;
    }
    if (!quiet) {
      std::fprintf(stderr, "offnet_analyze: baselined %zu finding%s to %s\n",
                   findings.size(), findings.size() == 1 ? "" : "s",
                   baseline_path.c_str());
    }
    return 0;
  }

  if (!baseline_path.empty()) {
    findings = offnet::analyze::apply_baseline(std::move(findings), baseline,
                                               baseline_path);
  }

  if (!quiet) {
    for (const offnet::analyze::Finding& finding : findings) {
      std::fprintf(stderr, "%s\n",
                   offnet::analyze::format(finding).c_str());
    }
    if (!findings.empty()) {
      std::fprintf(stderr, "offnet_analyze: %zu finding%s\n",
                   findings.size(), findings.size() == 1 ? "" : "s");
    }
  }
  return findings.empty() ? 0 : 1;
}
