#!/usr/bin/env sh
# One-shot pre-PR gate: configure, build, test, lint. This is the exact
# sequence CI runs; a clean exit here means the PR is mergeable.
#
#   1. configure  fresh CMake configure with warnings as errors and
#                 thread-safety analysis as errors where the compiler
#                 supports it (Clang); GCC prints a notice and skips
#                 that leg — the annotations compile as no-ops
#   2. build      full build, -Wall -Wextra -Werror
#   3. ctest      the whole suite, including offnet_lint_tree and
#                 lint_test
#   4. lint       offnet_lint over src/ tools/ bench/ tests/ (redundant
#                 with the ctest entry, but gives readable output when
#                 it fails)
#   4b. analyze   offnet_analyze (DESIGN.md §13) over the same roots
#                 against tools/analyze/baseline.txt, then a seeded
#                 layering violation that must still fail with exit 1
#   5. metrics    export a small dataset, run `series --metrics-out`,
#                 and fail if the metrics JSON is missing any required
#                 stage key (the §4 funnel counters, series accounting,
#                 and the timing section)
#   6. crash-resume  hard-kill a supervised series mid checkpoint
#                 publish, resume, require byte-identical output
#   7. delta      run `series` over two exported snapshots with and
#                 without --delta and require byte-identical reports
#                 and metrics (modulo the delta/* counters themselves,
#                 which must be thread-count independent and nonzero)
#   7b. stream    run `series` with and without --stream (1 and 4
#                 threads) and require byte-identical reports and
#                 timing-stripped metrics
#   8. offnetd    serve the exported data, query it (including one
#                 malformed request), SIGTERM, require a clean drain
#   8b. chaos     exhaustive fault-space sweep (offnet_chaos --slice
#                 full): every registered fault stage x every
#                 occurrence the baseline runs cross x every applicable
#                 failure mode, zero invariant violations and a nonzero
#                 cell count per stage required (DESIGN.md §15)
#   9. TSan       rebuild svc_test, delta_test, io_stream_test, and
#                 chaos_test with -fsanitize=thread and rerun the
#                 suites under the sanitizer (chaos_test minus its
#                 service cells, whose protocol deadlines don't budget
#                 for sanitizer slowdown)
#  10. ASan/UBSan rebuild offnet_analyze + offnet_lint with
#                 -fsanitize=address,undefined and rerun them over the
#                 real tree (they parse every source file with raw
#                 index arithmetic)
#  11. clang-tidy best-effort: skipped with a notice when not installed
#
# Usage: tools/check.sh [build-dir]   (default: build-check)
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build-check"}

step() { printf '\n== check.sh: %s ==\n' "$1"; }

step "configure ($build_dir)"
# OFFNET_THREAD_SAFETY=AUTO turns -Wthread-safety into errors under
# Clang and degrades to a notice under GCC; OFFNET_WERROR hardens the
# ordinary warning set either way.
cmake -S "$repo_root" -B "$build_dir" \
      -DCMAKE_BUILD_TYPE=Release \
      -DOFFNET_WERROR=ON \
      -DOFFNET_THREAD_SAFETY=AUTO \
      -DCMAKE_EXPORT_COMPILE_COMMANDS=ON

step "build"
cmake --build "$build_dir" -j "$(nproc 2>/dev/null || echo 2)"

step "ctest"
ctest --test-dir "$build_dir" --output-on-failure

step "offnet_lint"
"$build_dir/tools/offnet_lint" \
    "$repo_root/src" "$repo_root/tools" "$repo_root/bench" "$repo_root/tests"

step "offnet_analyze (layer DAG, annotations, registries)"
# The semantic analyzer must pass the real tree with zero findings
# beyond the checked-in baseline (redundant with the ctest entry, but
# gives readable output when it fails) ...
"$build_dir/tools/offnet_analyze" \
    --baseline "$repo_root/tools/analyze/baseline.txt" \
    "$repo_root/src" "$repo_root/tools" "$repo_root/bench" "$repo_root/tests"
# ... and the gate itself must still bite: a seeded layering violation
# (the back_edge fixture) has to fail with the documented exit code 1.
rc=0
"$build_dir/tools/offnet_analyze" \
    "$repo_root/tests/analyze_fixtures/back_edge" > /dev/null 2>&1 || rc=$?
if [ "$rc" -ne 1 ]; then
  echo "check.sh: offnet_analyze FAILED open: seeded back_edge fixture exited $rc, want 1" >&2
  exit 1
fi
echo "offnet_analyze OK: tree clean, seeded violation still detected"

step "metrics smoke (series --metrics-out)"
smoke_dir="$build_dir/metrics-smoke"
rm -rf "$smoke_dir"
mkdir -p "$smoke_dir/data/2021-04"
"$build_dir/tools/offnet_cli" export --out "$smoke_dir/data/2021-04" \
    --scale 0.02 --month 2021-04 > /dev/null
"$build_dir/tools/offnet_cli" series --root "$smoke_dir/data" \
    --metrics-out "$smoke_dir/metrics.json" > /dev/null
for key in \
    'pipeline/records' \
    'pipeline/drop/invalid_chain' \
    'pipeline/drop/org_keyword_miss' \
    'pipeline/drop/subset_rule' \
    'pipeline/drop/header_miss' \
    'series/snapshots' \
    'series/health/complete' \
    'load/lines_ok' \
    '"timing"'; do
  if ! grep -q -- "$key" "$smoke_dir/metrics.json"; then
    echo "check.sh: metrics smoke FAILED: missing $key in metrics.json" >&2
    exit 1
  fi
done
echo "metrics smoke OK: all required stage keys present"

step "crash-resume smoke (series --checkpoint-dir / --resume)"
# Start a supervised series, hard-kill it mid checkpoint publish
# (--crash-after aborts with std::_Exit during the (N+1)th publish),
# resume from the surviving checkpoint, and require the resumed run's
# report and deterministic metrics to be byte-identical to an
# uninterrupted run's. The timing section is wall-clock and is stripped
# before the metrics diff.
crash_dir="$build_dir/crash-smoke"
rm -rf "$crash_dir"
mkdir -p "$crash_dir/ckpt-full" "$crash_dir/ckpt-crash"
"$build_dir/tools/offnet_cli" series --root "$smoke_dir/data" \
    --checkpoint-dir "$crash_dir/ckpt-full" \
    --metrics-out "$crash_dir/full-metrics.json" \
    > "$crash_dir/full.txt"
rc=0
"$build_dir/tools/offnet_cli" series --root "$smoke_dir/data" \
    --checkpoint-dir "$crash_dir/ckpt-crash" \
    --crash-after 15 > /dev/null 2>&1 || rc=$?
if [ "$rc" -ne 70 ]; then
  echo "check.sh: crash-resume smoke FAILED: expected abort exit 70, got $rc" >&2
  exit 1
fi
if [ ! -f "$crash_dir/ckpt-crash/checkpoint.offnet" ]; then
  echo "check.sh: crash-resume smoke FAILED: no checkpoint survived the kill" >&2
  exit 1
fi
"$build_dir/tools/offnet_cli" series --root "$smoke_dir/data" \
    --checkpoint-dir "$crash_dir/ckpt-crash" --resume \
    --metrics-out "$crash_dir/resumed-metrics.json" \
    > "$crash_dir/resumed.txt"
if ! cmp -s "$crash_dir/full.txt" "$crash_dir/resumed.txt"; then
  echo "check.sh: crash-resume smoke FAILED: resumed report differs" >&2
  diff "$crash_dir/full.txt" "$crash_dir/resumed.txt" >&2 || true
  exit 1
fi
sed '/"timing"/,$d' "$crash_dir/full-metrics.json" > "$crash_dir/full-metrics.stripped"
sed '/"timing"/,$d' "$crash_dir/resumed-metrics.json" > "$crash_dir/resumed-metrics.stripped"
if ! cmp -s "$crash_dir/full-metrics.stripped" "$crash_dir/resumed-metrics.stripped"; then
  echo "check.sh: crash-resume smoke FAILED: resumed metrics differ" >&2
  diff "$crash_dir/full-metrics.stripped" "$crash_dir/resumed-metrics.stripped" >&2 || true
  exit 1
fi
echo "crash-resume smoke OK: resumed report and metrics are byte-identical"

step "delta smoke (series --delta vs --no-delta)"
# Two exported snapshots so the cache has cross-snapshot overlap to
# exploit (the cache lives in-process for one series run). The --delta
# report must be byte-identical to --no-delta, its metrics identical
# once the wall-clock timing section and the delta/* counters are
# stripped, the delta/* counters themselves thread-count independent,
# and the cache must actually have hit.
delta_dir="$build_dir/delta-smoke"
rm -rf "$delta_dir"
mkdir -p "$delta_dir/data/2021-01" "$delta_dir/data/2021-04"
"$build_dir/tools/offnet_cli" export --out "$delta_dir/data/2021-01" \
    --scale 0.02 --month 2021-01 > /dev/null
"$build_dir/tools/offnet_cli" export --out "$delta_dir/data/2021-04" \
    --scale 0.02 --month 2021-04 > /dev/null
"$build_dir/tools/offnet_cli" series --root "$delta_dir/data" --no-delta \
    --metrics-out "$delta_dir/full-metrics.json" > "$delta_dir/full.txt"
"$build_dir/tools/offnet_cli" series --root "$delta_dir/data" --delta \
    --metrics-out "$delta_dir/delta-metrics.json" > "$delta_dir/delta.txt"
"$build_dir/tools/offnet_cli" series --root "$delta_dir/data" --delta \
    --threads 4 \
    --metrics-out "$delta_dir/delta4-metrics.json" > "$delta_dir/delta4.txt"
if ! cmp -s "$delta_dir/full.txt" "$delta_dir/delta.txt"; then
  echo "check.sh: delta smoke FAILED: --delta report differs from --no-delta" >&2
  diff "$delta_dir/full.txt" "$delta_dir/delta.txt" >&2 || true
  exit 1
fi
if ! cmp -s "$delta_dir/delta.txt" "$delta_dir/delta4.txt"; then
  echo "check.sh: delta smoke FAILED: --delta report differs across thread counts" >&2
  exit 1
fi
strip_delta() { sed '/"timing"/,$d' "$1" | grep -v '"delta/'; }
strip_delta "$delta_dir/full-metrics.json" > "$delta_dir/full-metrics.stripped"
strip_delta "$delta_dir/delta-metrics.json" > "$delta_dir/delta-metrics.stripped"
if ! cmp -s "$delta_dir/full-metrics.stripped" "$delta_dir/delta-metrics.stripped"; then
  echo "check.sh: delta smoke FAILED: --delta metrics differ from --no-delta" >&2
  diff "$delta_dir/full-metrics.stripped" "$delta_dir/delta-metrics.stripped" >&2 || true
  exit 1
fi
# The delta/* counters (kept this time) must be thread-count independent.
sed '/"timing"/,$d' "$delta_dir/delta-metrics.json" > "$delta_dir/delta-metrics.det"
sed '/"timing"/,$d' "$delta_dir/delta4-metrics.json" > "$delta_dir/delta4-metrics.det"
if ! cmp -s "$delta_dir/delta-metrics.det" "$delta_dir/delta4-metrics.det"; then
  echo "check.sh: delta smoke FAILED: delta/* counters differ across thread counts" >&2
  diff "$delta_dir/delta-metrics.det" "$delta_dir/delta4-metrics.det" >&2 || true
  exit 1
fi
if ! grep -q '"delta/hits": [1-9]' "$delta_dir/delta-metrics.json"; then
  echo "check.sh: delta smoke FAILED: zero delta/hits across two snapshots" >&2
  grep '"delta/' "$delta_dir/delta-metrics.json" >&2 || true
  exit 1
fi
echo "delta smoke OK: byte-identical to full recompute, cache hit"

step "streaming smoke (series --stream vs default load)"
# The streaming ingestion engine (DESIGN.md §14) promises bit-identical
# results at any thread count: same reports, same metrics (once the
# wall-clock timing section is stripped), for the same corpus. Reuses
# the delta smoke's export.
stream_dir="$build_dir/stream-smoke"
rm -rf "$stream_dir"
mkdir -p "$stream_dir"
"$build_dir/tools/offnet_cli" series --root "$delta_dir/data" \
    --metrics-out "$stream_dir/base-metrics.json" > "$stream_dir/base.txt"
"$build_dir/tools/offnet_cli" series --root "$delta_dir/data" --stream \
    --metrics-out "$stream_dir/s1-metrics.json" > "$stream_dir/s1.txt"
"$build_dir/tools/offnet_cli" series --root "$delta_dir/data" --stream \
    --threads 4 \
    --metrics-out "$stream_dir/s4-metrics.json" > "$stream_dir/s4.txt"
for variant in s1 s4; do
  if ! cmp -s "$stream_dir/base.txt" "$stream_dir/$variant.txt"; then
    echo "check.sh: streaming smoke FAILED: --stream ($variant) report differs" >&2
    diff "$stream_dir/base.txt" "$stream_dir/$variant.txt" >&2 || true
    exit 1
  fi
  sed '/"timing"/,$d' "$stream_dir/base-metrics.json" > "$stream_dir/base.det"
  sed '/"timing"/,$d' "$stream_dir/$variant-metrics.json" > "$stream_dir/$variant.det"
  if ! cmp -s "$stream_dir/base.det" "$stream_dir/$variant.det"; then
    echo "check.sh: streaming smoke FAILED: --stream ($variant) metrics differ" >&2
    diff "$stream_dir/base.det" "$stream_dir/$variant.det" >&2 || true
    exit 1
  fi
done
echo "streaming smoke OK: --stream byte-identical at 1 and 4 threads"

step "offnetd smoke (serve, query, malformed request, SIGTERM drain)"
# Start the daemon over the metrics-smoke export, wait for its READY
# line, query it through `offnet_cli query` (including one deliberately
# malformed request, which must get a per-request ERR — exit 65 — while
# the daemon keeps serving), then SIGTERM it and require a clean drain
# (exit 0).
svc_dir="$build_dir/offnetd-smoke"
rm -rf "$svc_dir"
mkdir -p "$svc_dir"
"$build_dir/tools/offnetd" --socket "$svc_dir/offnetd.sock" \
    --root "$smoke_dir/data" --metrics-out "$svc_dir/metrics.json" \
    > "$svc_dir/ready.txt" 2> "$svc_dir/daemon.err" &
offnetd_pid=$!
tries=0
until grep -q '^READY' "$svc_dir/ready.txt" 2>/dev/null; do
  tries=$((tries + 1))
  if [ "$tries" -gt 120 ] || ! kill -0 "$offnetd_pid" 2>/dev/null; then
    echo "check.sh: offnetd smoke FAILED: daemon never became ready" >&2
    cat "$svc_dir/daemon.err" >&2 || true
    exit 1
  fi
  sleep 0.5
done
run_query() {
  "$build_dir/tools/offnet_cli" query --socket "$svc_dir/offnetd.sock" \
      --send "$1"
}
run_query "PING" | grep -q '^OK pong' || {
  echo "check.sh: offnetd smoke FAILED: PING did not answer OK pong" >&2
  exit 1
}
run_query "INFO" | grep -q 'version=1' || {
  echo "check.sh: offnetd smoke FAILED: INFO missing version=1" >&2
  exit 1
}
run_query "FOOTPRINT 2021-04 Google" | grep -q '^OK month=2021-04' || {
  echo "check.sh: offnetd smoke FAILED: FOOTPRINT query failed" >&2
  exit 1
}
rc=0
run_query "$(printf 'PI\001NG')" > "$svc_dir/malformed.txt" || rc=$?
if [ "$rc" -ne 65 ] || ! grep -q '^ERR' "$svc_dir/malformed.txt"; then
  echo "check.sh: offnetd smoke FAILED: malformed request: want ERR/exit 65, got exit $rc" >&2
  cat "$svc_dir/malformed.txt" >&2 || true
  exit 1
fi
# The malformed request must not have taken the daemon down.
run_query "PING" | grep -q '^OK pong' || {
  echo "check.sh: offnetd smoke FAILED: daemon died after malformed request" >&2
  exit 1
}
kill -TERM "$offnetd_pid"
rc=0
wait "$offnetd_pid" || rc=$?
if [ "$rc" -ne 0 ]; then
  echo "check.sh: offnetd smoke FAILED: SIGTERM drain exited $rc, want 0" >&2
  cat "$svc_dir/daemon.err" >&2 || true
  exit 1
fi
if [ -e "$svc_dir/offnetd.sock" ]; then
  echo "check.sh: offnetd smoke FAILED: socket file not unlinked on drain" >&2
  exit 1
fi
grep -q 'svc/requests' "$svc_dir/metrics.json" || {
  echo "check.sh: offnetd smoke FAILED: no svc/ metrics exported on drain" >&2
  exit 1
}
echo "offnetd smoke OK: served, survived malformed input, drained cleanly"

step "chaos sweep (offnet_chaos --slice full, exhaustive fault space)"
# Every registered fault stage x every occurrence the baseline series
# and service runs cross x every applicable failure mode (throw, abort,
# and the errno menu). Exit 0 already implies zero invariant violations
# and a nonzero cell count for every stage (a stage whose fault space
# is unreachable is itself reported as a violation); the greps keep the
# gate honest if those exit semantics ever drift.
chaos_dir="$build_dir/chaos-sweep"
rm -rf "$chaos_dir" "$build_dir/chaos-summary.txt"
rc=0
"$build_dir/tools/offnet_chaos" --sweep \
    --cli "$build_dir/tools/offnet_cli" \
    --daemon "$build_dir/tools/offnetd" \
    --dir "$chaos_dir" --slice full \
    > "$build_dir/chaos-summary.txt" 2>&1 || rc=$?
cat "$build_dir/chaos-summary.txt"
if [ "$rc" -ne 0 ]; then
  echo "check.sh: chaos sweep FAILED: exit $rc, want 0" >&2
  exit 1
fi
if ! grep -q ', 0 violations' "$build_dir/chaos-summary.txt"; then
  echo "check.sh: chaos sweep FAILED: summary reports violations" >&2
  exit 1
fi
# A `stage=0` entry in the per-stage cell counts would mean a
# registered stage swept zero cells — coverage silently lost.
if grep -q '=0' "$build_dir/chaos-summary.txt"; then
  echo "check.sh: chaos sweep FAILED: a stage swept zero cells" >&2
  exit 1
fi
echo "chaos sweep OK: exhaustive fault space swept clean"

step "TSan leg (svc_test + delta_test + io_stream_test + chaos_test under -fsanitize=thread)"
# The concurrency half of the proofs: svc_test (concurrent pin/publish,
# queries racing reloads, drain), delta_test (sharded probes against
# the frozen cache at several thread counts), and io_stream_test (the
# bounded ring + streaming parse workers) rebuilt with
# OFFNET_SANITIZE=thread so TSan watches the locking.
tsan_dir="$build_dir-tsan"
cmake -S "$repo_root" -B "$tsan_dir" \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DOFFNET_SANITIZE=thread > /dev/null
cmake --build "$tsan_dir" -j "$(nproc 2>/dev/null || echo 2)" \
      --target svc_test --target delta_test --target io_stream_test \
      --target chaos_test
"$tsan_dir/tests/svc_test"
"$tsan_dir/tests/delta_test"
"$tsan_dir/tests/io_stream_test"
# chaos_test also builds TSan-instrumented offnet_chaos, offnet_cli,
# and offnetd (target dependencies). Run the cells that drive the CLI
# directly — supervised retry loops and checkpoint publishes under
# injected faults, with the thread pool instrumented. The sweep-driving
# tests stay in the Release ctest leg: the harness's 2s query deadlines
# don't budget for sanitizer slowdown.
"$tsan_dir/tests/chaos_test" \
    --gtest_filter='-*BoundedSlice*:*Deterministic*'

step "ASan/UBSan leg (offnet_analyze over the real tree)"
# The analyzer parses every repo source with hand-rolled index
# arithmetic; run it over the whole tree with address+undefined
# instrumentation so an off-by-one in the lexer or parser becomes a
# hard failure here instead of silent memory corruption.
asan_dir="$build_dir-asan"
cmake -S "$repo_root" -B "$asan_dir" \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DOFFNET_SANITIZE=address,undefined > /dev/null
cmake --build "$asan_dir" -j "$(nproc 2>/dev/null || echo 2)" \
      --target offnet_analyze --target offnet_lint
"$asan_dir/tools/offnet_analyze" \
    --baseline "$repo_root/tools/analyze/baseline.txt" \
    "$repo_root/src" "$repo_root/tools" "$repo_root/bench" "$repo_root/tests"
"$asan_dir/tools/offnet_lint" \
    "$repo_root/src" "$repo_root/tools" "$repo_root/bench" "$repo_root/tests"

step "clang-tidy"
"$repo_root/tools/run_clang_tidy.sh" "$build_dir"

step "all gates passed"
