#!/usr/bin/env sh
# One-shot pre-PR gate: configure, build, test, lint. This is the exact
# sequence CI runs; a clean exit here means the PR is mergeable.
#
#   1. configure  fresh CMake configure with warnings as errors and
#                 thread-safety analysis as errors where the compiler
#                 supports it (Clang); GCC prints a notice and skips
#                 that leg — the annotations compile as no-ops
#   2. build      full build, -Wall -Wextra -Werror
#   3. ctest      the whole suite, including offnet_lint_tree and
#                 lint_test
#   4. lint       offnet_lint over src/ tools/ bench/ tests/ (redundant
#                 with the ctest entry, but gives readable output when
#                 it fails)
#   5. clang-tidy best-effort: skipped with a notice when not installed
#
# Usage: tools/check.sh [build-dir]   (default: build-check)
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build-check"}

step() { printf '\n== check.sh: %s ==\n' "$1"; }

step "configure ($build_dir)"
# OFFNET_THREAD_SAFETY=AUTO turns -Wthread-safety into errors under
# Clang and degrades to a notice under GCC; OFFNET_WERROR hardens the
# ordinary warning set either way.
cmake -S "$repo_root" -B "$build_dir" \
      -DCMAKE_BUILD_TYPE=Release \
      -DOFFNET_WERROR=ON \
      -DOFFNET_THREAD_SAFETY=AUTO \
      -DCMAKE_EXPORT_COMPILE_COMMANDS=ON

step "build"
cmake --build "$build_dir" -j "$(nproc 2>/dev/null || echo 2)"

step "ctest"
ctest --test-dir "$build_dir" --output-on-failure

step "offnet_lint"
"$build_dir/tools/offnet_lint" \
    "$repo_root/src" "$repo_root/tools" "$repo_root/bench" "$repo_root/tests"

step "clang-tidy"
"$repo_root/tools/run_clang_tidy.sh" "$build_dir"

step "all gates passed"
