#pragma once

/// The documented exit-code taxonomy for offnet_cli and offnetd,
/// following the BSD sysexits conventions so scripts (tools/check.sh,
/// operators' unit files) can tell *why* a run failed instead of
/// pattern-matching stderr. cli_robustness_test asserts each mapping.
namespace offnet::tools {

/// Success.
inline constexpr int kExitOk = 0;

/// Unclassified failure — an unexpected exception. Anything mapped here
/// deserves a more specific code; treated as a bug in the taxonomy.
inline constexpr int kExitUnexpected = 1;

/// EX_USAGE: bad command line (unknown command/flag, malformed or
/// out-of-range flag value, missing required flag).
inline constexpr int kExitUsage = 64;

/// EX_DATAERR: the input data was unusable — corrupt checkpoint, strict
/// load failure, blown error budget, a series with zero usable
/// snapshots, or an ERR response to `offnet_cli query`.
inline constexpr int kExitData = 65;

/// Crash injection (core::FaultInjector::kAbortExitCode): an armed
/// abort-mode fault killed the process on purpose.
inline constexpr int kExitCrashInjected = 70;

/// EX_IOERR: the machinery failed, not the data — cannot write an
/// artifact or metrics file, stdout write failure, cannot reach or talk
/// to offnetd.
inline constexpr int kExitIo = 74;

/// EX_TEMPFAIL: the server shed the request (BUSY response — queue full
/// or deadline exceeded). Retrying later is expected to succeed.
inline constexpr int kExitTempFail = 75;

}  // namespace offnet::tools
