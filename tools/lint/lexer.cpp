#include "lexer.h"

namespace offnet::lint {

Stripped strip(std::string_view text) {
  Stripped out;
  out.code.assign(text.size(), ' ');
  out.directives.assign(text.size(), ' ');
  out.line_starts.push_back(0);

  enum class State { kCode, kLineComment, kBlockComment, kString, kChar,
                     kRawString };
  State state = State::kCode;
  std::string raw_delim;        // for kRawString: the )delim" terminator
  std::size_t comment_start = 0;
  bool line_has_code = false;

  auto begin_comment = [&](std::size_t i) {
    comment_start = i;
    out.comments.push_back(
        {out.line_starts.size(), line_has_code, std::string()});
  };
  auto end_comment = [&](std::size_t end) {
    out.comments.back().text.assign(text.substr(comment_start,
                                                end - comment_start));
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const char next = i + 1 < text.size() ? text[i + 1] : '\0';
    if (c == '\n') {
      out.code[i] = '\n';
      out.directives[i] = '\n';
      if (state == State::kLineComment) {
        end_comment(i);
        state = State::kCode;
      }
      out.line_starts.push_back(i + 1);
      line_has_code = false;
      continue;
    }
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          begin_comment(i);
          state = State::kLineComment;
        } else if (c == '/' && next == '*') {
          begin_comment(i);
          state = State::kBlockComment;
          ++i;
        } else if (c == '"') {
          if (i > 0 && text[i - 1] == 'R' &&
              (i < 2 || !ident_char(text[i - 2]))) {
            // R"delim( ... )delim"
            std::size_t paren = text.find('(', i + 1);
            if (paren == std::string_view::npos) break;
            // clear + push_back, not `raw_delim = ")"`: GCC 12
            // -Wrestrict misfires on the inlined const char*
            // assignment path at -O2 (same as io/corruption.cpp).
            raw_delim.clear();
            raw_delim.push_back(')');
            raw_delim += text.substr(i + 1, paren - i - 1);
            raw_delim += '"';
            state = State::kRawString;
            out.code[i] = ' ';
            out.directives[i] = '"';
            break;
          }
          state = State::kString;
          out.code[i] = ' ';
          out.directives[i] = '"';
          line_has_code = true;
        } else if (c == '\'') {
          // A ' inside a numeric token (1'000'000, 0xFF'FF) is a C++14
          // digit separator, not a character literal: walk back to the
          // token start and check whether it begins with a digit.
          // (u'x' / L'x' prefixes start with a letter, so they still
          // lex as character literals.)
          std::size_t token = i;
          while (token > 0 && ident_char(text[token - 1])) --token;
          if (token < i &&
              std::isdigit(static_cast<unsigned char>(text[token]))) {
            out.code[i] = c;
            out.directives[i] = c;
          } else {
            state = State::kChar;
          }
          line_has_code = true;
        } else {
          out.code[i] = c;
          out.directives[i] = c;
          if (!std::isspace(static_cast<unsigned char>(c))) {
            line_has_code = true;
          }
        }
        break;
      case State::kLineComment:
      case State::kBlockComment:
        if (state == State::kBlockComment && c == '*' && next == '/') {
          end_comment(i + 2);
          state = State::kCode;
          ++i;
        }
        break;
      case State::kString:
        out.directives[i] = c;
        if (c == '\\') {
          if (i + 1 < text.size() && text[i + 1] != '\n') {
            out.directives[i + 1] = text[i + 1];
            ++i;
          }
        } else if (c == '"') {
          state = State::kCode;
        }
        break;
      case State::kChar:
        if (c == '\\') {
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
        }
        break;
      case State::kRawString:
        if (text.compare(i, raw_delim.size(), raw_delim) == 0) {
          for (std::size_t k = 0; k < raw_delim.size(); ++k) {
            if (text[i + k] == '\n') continue;
            out.directives[i + k] = text[i + k];
          }
          i += raw_delim.size() - 1;
          state = State::kCode;
        }
        break;
    }
  }
  if (state == State::kLineComment || state == State::kBlockComment) {
    end_comment(text.size());
  }
  return out;
}

std::vector<std::string_view> split_top_level(std::string_view args) {
  std::vector<std::string_view> out;
  int depth = 0;
  std::size_t start = 0;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const char c = args[i];
    if (c == '(' || c == '[' || c == '{') ++depth;
    if (c == ')' || c == ']' || c == '}') --depth;
    if (c == ',' && depth == 0) {
      out.push_back(args.substr(start, i - start));
      start = i + 1;
    }
  }
  out.push_back(args.substr(start));
  return out;
}

}  // namespace offnet::lint
