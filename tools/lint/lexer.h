#pragma once

#include <algorithm>
#include <cctype>
#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

/// The shared lexer pass behind offnet_lint and offnet_analyze: strips
/// comments and string/char literals from C++ source with a small state
/// machine, preserving newlines so offsets and line numbers line up with
/// the original text. Both tools are deliberately token-level — no real
/// parser, no compiler dependency — so everything they look at starts
/// from this one stripped view.
namespace offnet::lint {

/// One comment captured by the stripper, with the line it starts on and
/// whether any code precedes it on that line.
struct Comment {
  std::size_t line = 0;
  bool trailing = false;  // shares its line with code
  std::string text;
};

/// The lexer pass: `code` has comments and string/char literals blanked
/// to spaces (newlines kept, so offsets and lines line up with the
/// original); `directives` keeps string literals intact (for #include
/// paths and registry values) but still blanks comments.
struct Stripped {
  std::string code;
  std::string directives;
  std::vector<Comment> comments;
  std::vector<std::size_t> line_starts;  // offset of each line's first char

  std::size_t line_of(std::size_t offset) const {
    auto it = std::upper_bound(line_starts.begin(), line_starts.end(), offset);
    return static_cast<std::size_t>(it - line_starts.begin());
  }
};

Stripped strip(std::string_view text);

// ---- Token helpers shared by the rule passes ----

inline bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// True when `word` occupies [pos, pos+word.size()) as a whole token.
inline bool word_at(std::string_view text, std::size_t pos,
                    std::string_view word) {
  if (text.compare(pos, word.size(), word) != 0) return false;
  if (pos > 0 && ident_char(text[pos - 1])) return false;
  std::size_t after = pos + word.size();
  return after >= text.size() || !ident_char(text[after]);
}

inline std::size_t skip_spaces(std::string_view text, std::size_t pos) {
  while (pos < text.size() &&
         std::isspace(static_cast<unsigned char>(text[pos]))) {
    ++pos;
  }
  return pos;
}

inline std::string_view trim(std::string_view s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

/// Finds the offset of the matching ')' for the '(' at `open`.
inline std::size_t matching_paren(std::string_view text, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < text.size(); ++i) {
    if (text[i] == '(') ++depth;
    if (text[i] == ')' && --depth == 0) return i;
  }
  return std::string_view::npos;
}

/// Splits `args` at commas that sit at bracket depth zero.
std::vector<std::string_view> split_top_level(std::string_view args);

/// True when any '/'-separated component of `path` equals `dir`.
inline bool has_dir(std::string_view path, std::string_view dir) {
  std::size_t start = 0;
  while (start <= path.size()) {
    std::size_t end = path.find('/', start);
    if (end == std::string_view::npos) end = path.size();
    if (path.substr(start, end - start) == dir) return true;
    start = end + 1;
  }
  return false;
}

inline std::string_view filename_of(std::string_view path) {
  std::size_t slash = path.find_last_of('/');
  return slash == std::string_view::npos ? path : path.substr(slash + 1);
}

}  // namespace offnet::lint
