#include "lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <utility>

#include "lexer.h"

namespace offnet::lint {

namespace {

namespace fs = std::filesystem;

const char* const kKnownRules[] = {
    "nondet-rand",   "nondet-clock",     "raw-lock",
    "unordered-iter", "float-eq",         "include-quoted",
    "include-relative", "pragma-once",    "bad-suppression",
    "raw-artifact-write", "raw-socket",   "stale-suppression",
};

bool known_rule(std::string_view rule) {
  for (const char* id : kKnownRules) {
    if (rule == id) return true;
  }
  return false;
}

/// Matches a full floating-point literal: 1.0, .5, 2e-3, 1.5f, ...
bool is_float_literal(std::string_view token) {
  std::size_t i = 0;
  if (i < token.size() && (token[i] == '+' || token[i] == '-')) ++i;
  bool digits = false, dot = false, exponent = false;
  std::size_t start = i;
  while (i < token.size()) {
    const char c = token[i];
    if (std::isdigit(static_cast<unsigned char>(c))) {
      digits = true;
    } else if (c == '.' && !dot && !exponent) {
      dot = true;
    } else if ((c == 'e' || c == 'E') && digits && !exponent &&
               i + 1 < token.size()) {
      exponent = true;
      if (token[i + 1] == '+' || token[i + 1] == '-') ++i;
    } else {
      break;
    }
    ++i;
  }
  if (!digits || (!dot && !exponent) || i == start) return false;
  if (i < token.size() && (token[i] == 'f' || token[i] == 'F' ||
                           token[i] == 'l' || token[i] == 'L')) {
    ++i;
  }
  return i == token.size();
}

/// One `allow(rule)` grant: the rule it suppresses, the line the comment
/// itself sits on (where suppression rot is reported), and whether any
/// finding actually consumed it.
struct Suppression {
  std::string rule;
  std::size_t comment_line = 0;
  bool used = false;
};

/// Per-file suppression table parsed from
/// `// offnet-lint: allow(rule-id): justification`, keyed by the line
/// the grant covers.
struct Suppressions {
  std::map<std::size_t, std::vector<Suppression>> by_line;
  std::vector<Finding> errors;

  bool allows(std::size_t line, std::string_view rule) {
    auto it = by_line.find(line);
    if (it == by_line.end()) return false;
    bool hit = false;
    for (Suppression& grant : it->second) {
      if (grant.rule == rule) {
        grant.used = true;
        hit = true;
      }
    }
    return hit;
  }
};

Suppressions parse_suppressions(const std::string& path,
                                const Stripped& stripped) {
  Suppressions out;
  constexpr std::string_view kTag = "offnet-lint:";
  for (const Comment& comment : stripped.comments) {
    std::size_t tag = comment.text.find(kTag);
    if (tag == std::string::npos) continue;
    std::string_view rest =
        trim(std::string_view(comment.text).substr(tag + kTag.size()));
    constexpr std::string_view kAllow = "allow(";
    if (rest.substr(0, kAllow.size()) != kAllow) {
      out.errors.push_back({path, comment.line, "bad-suppression",
                            "expected 'allow(rule-id): justification'"});
      continue;
    }
    std::size_t close = rest.find(')');
    if (close == std::string_view::npos) {
      out.errors.push_back({path, comment.line, "bad-suppression",
                            "unterminated allow(...)"});
      continue;
    }
    std::string rule(trim(rest.substr(kAllow.size(), close - kAllow.size())));
    std::string_view why = trim(rest.substr(close + 1));
    if (!why.empty() && why.front() == ':') why = trim(why.substr(1));
    if (rule == "rule-id") continue;  // the documented placeholder syntax
    if (!known_rule(rule)) {
      out.errors.push_back({path, comment.line, "bad-suppression",
                            "unknown rule id '" + rule + "'"});
      continue;
    }
    if (why.empty()) {
      out.errors.push_back({path, comment.line, "bad-suppression",
                            "suppression of '" + rule +
                                "' needs a justification"});
      continue;
    }
    // A trailing comment covers its own line; a standalone comment covers
    // the next line.
    out.by_line[comment.trailing ? comment.line : comment.line + 1]
        .push_back({rule, comment.line, false});
  }
  return out;
}

// ---- Rules ----

void rule_nondet_rand(const std::string& path, const Stripped& s,
                      std::vector<Finding>& out) {
  if (has_dir(path, "net") && filename_of(path).substr(0, 4) == "rng.") {
    return;  // the one sanctioned randomness module
  }
  const std::string_view code = s.code;
  for (std::size_t i = 0; i < code.size(); ++i) {
    bool hit = false;
    std::string_view what;
    for (std::string_view fn : {"rand", "srand", "drand48", "lrand48"}) {
      const std::size_t after = skip_spaces(code, i + fn.size());
      if (word_at(code, i, fn) && after < code.size() &&
          code[after] == '(') {
        hit = true;
        what = fn;
        break;
      }
    }
    if (!hit && word_at(code, i, "random_device")) {
      hit = true;
      what = "random_device";
    }
    if (hit) {
      out.push_back({path, s.line_of(i), "nondet-rand",
                     "unseeded randomness (" + std::string(what) +
                         ") in the measurement path; use net::Rng"});
      i += what.size();
    }
  }
}

void rule_nondet_clock(const std::string& path, const Stripped& s,
                       std::vector<Finding>& out) {
  if (has_dir(path, "tools")) return;  // CLI may read the wall clock
  if (has_dir(path, "obs") &&
      filename_of(path).substr(0, 12) == "stage_timer.") {
    return;  // the one sanctioned monotonic-clock read (obs::Stopwatch)
  }
  const std::string_view code = s.code;
  for (std::size_t i = 0; i < code.size(); ++i) {
    std::string_view clock;
    for (std::string_view name :
         {"system_clock", "steady_clock", "high_resolution_clock"}) {
      if (word_at(code, i, name)) {
        clock = name;
        break;
      }
    }
    if (!clock.empty()) {
      out.push_back({path, s.line_of(i), "nondet-clock",
                     "clock read (" + std::string(clock) +
                         ") in the measurement path; time stages with "
                         "obs::StageTimer, derive data times from "
                         "snapshot indices"});
      i += clock.size();
    }
  }
}

void rule_raw_lock(const std::string& path, const Stripped& s,
                   std::vector<Finding>& out) {
  const std::string_view code = s.code;
  for (std::size_t i = 1; i < code.size(); ++i) {
    std::string_view method;
    if (word_at(code, i, "unlock")) {
      method = "unlock";
    } else if (word_at(code, i, "lock")) {
      method = "lock";
    } else {
      continue;
    }
    // Member call: preceded by '.' or '->', followed by '()'.
    std::size_t before = i;
    while (before > 0 &&
           std::isspace(static_cast<unsigned char>(code[before - 1]))) {
      --before;
    }
    const bool member =
        (before >= 1 && code[before - 1] == '.') ||
        (before >= 2 && code[before - 2] == '-' && code[before - 1] == '>');
    if (!member) continue;
    std::size_t open = skip_spaces(code, i + method.size());
    if (open >= code.size() || code[open] != '(') continue;
    if (code[skip_spaces(code, open + 1)] != ')') continue;
    out.push_back({path, s.line_of(i), "raw-lock",
                   "raw ." + std::string(method) +
                       "() call; use core::MutexLock / std::lock_guard / "
                       "std::scoped_lock / std::unique_lock"});
  }
}

void rule_unordered_iter(const std::string& path, const Stripped& s,
                         const std::vector<std::string>& extra_names,
                         std::vector<Finding>& out) {
  if (!has_dir(path, "src")) return;  // library code feeds merged results
  std::vector<std::string> names = unordered_container_names(s.code);
  names.insert(names.end(), extra_names.begin(), extra_names.end());

  const std::string_view code = s.code;
  for (std::size_t i = 0; i < code.size(); ++i) {
    if (!word_at(code, i, "for")) continue;
    std::size_t open = skip_spaces(code, i + 3);
    if (open >= code.size() || code[open] != '(') continue;
    std::size_t close = matching_paren(code, open);
    if (close == std::string_view::npos) continue;
    std::string_view head = code.substr(open + 1, close - open - 1);
    // The range-for ':' at bracket depth zero (skipping '::').
    int depth = 0;
    std::size_t colon = std::string_view::npos;
    for (std::size_t k = 0; k < head.size(); ++k) {
      const char c = head[k];
      if (c == '(' || c == '[' || c == '{' || c == '<') ++depth;
      if (c == ')' || c == ']' || c == '}' || c == '>') --depth;
      if (c == ':' && depth <= 0) {
        if ((k + 1 < head.size() && head[k + 1] == ':') ||
            (k > 0 && head[k - 1] == ':')) {
          continue;
        }
        colon = k;
        break;
      }
      if (c == ';') break;  // classic for loop
    }
    if (colon == std::string_view::npos) continue;
    std::string_view range = head.substr(colon + 1);
    bool hit = false;
    for (std::size_t k = 0; k + 1 < range.size() && !hit; ++k) {
      if (word_at(range, k, "unordered_map") ||
          word_at(range, k, "unordered_set")) {
        hit = true;
      }
      for (const std::string& name : names) {
        if (word_at(range, k, name)) {
          hit = true;
          break;
        }
      }
    }
    if (hit) {
      out.push_back(
          {path, s.line_of(i), "unordered-iter",
           "range-for over an unordered container in result-feeding code; "
           "iterate sorted keys (or suppress with a justification if the "
           "accumulation is order-independent)"});
    }
  }
}

void rule_float_eq(const std::string& path, const Stripped& s,
                   std::vector<Finding>& out) {
  if (!has_dir(path, "tests")) return;
  const std::string_view code = s.code;
  for (std::size_t i = 0; i < code.size(); ++i) {
    for (std::string_view macro :
         {"EXPECT_EQ", "ASSERT_EQ", "EXPECT_NE", "ASSERT_NE"}) {
      if (!word_at(code, i, macro)) continue;
      std::size_t open = skip_spaces(code, i + macro.size());
      if (open >= code.size() || code[open] != '(') continue;
      std::size_t close = matching_paren(code, open);
      if (close == std::string_view::npos) continue;
      for (std::string_view arg :
           split_top_level(code.substr(open + 1, close - open - 1))) {
        if (is_float_literal(trim(arg))) {
          out.push_back({path, s.line_of(i), "float-eq",
                         std::string(macro) +
                             " against a float literal; use "
                             "EXPECT_DOUBLE_EQ or EXPECT_NEAR"});
          break;
        }
      }
      break;
    }
    // Bare `== 1.5` / `!= 1.5` comparisons.
    if ((code[i] == '=' || code[i] == '!') && i + 1 < code.size() &&
        code[i + 1] == '=' && (i == 0 || (code[i - 1] != '<' &&
                                          code[i - 1] != '>' &&
                                          code[i - 1] != '=' &&
                                          code[i - 1] != '!'))) {
      if (i + 2 < code.size() && code[i + 2] == '=') continue;
      std::size_t tok = skip_spaces(code, i + 2);
      std::size_t end = tok;
      while (end < code.size() && (ident_char(code[end]) ||
                                   code[end] == '.' || code[end] == '+' ||
                                   code[end] == '-')) {
        ++end;
      }
      if (end > tok && is_float_literal(code.substr(tok, end - tok))) {
        out.push_back({path, s.line_of(i), "float-eq",
                       "float equality comparison in a test; use "
                       "EXPECT_DOUBLE_EQ or EXPECT_NEAR"});
      }
    }
  }
}

void rule_raw_artifact_write(const std::string& path, const Stripped& s,
                             std::vector<Finding>& out) {
  // Final artifacts are produced by src/ and tools/ code; tests and
  // benches write scratch files and are out of scope. io::AtomicFile
  // itself carries the one sanctioned suppression.
  if (!has_dir(path, "src") && !has_dir(path, "tools")) return;
  const std::string_view code = s.code;
  for (std::size_t i = 0; i < code.size(); ++i) {
    std::string_view what;
    if (word_at(code, i, "ofstream")) {
      what = "ofstream";
    } else if (word_at(code, i, "fopen")) {
      const std::size_t after = skip_spaces(code, i + 5);
      if (after < code.size() && code[after] == '(') what = "fopen";
    }
    if (what.empty()) continue;
    out.push_back({path, s.line_of(i), "raw-artifact-write",
                   "raw file write (" + std::string(what) +
                       ") in artifact-producing code; a crash here leaves "
                       "a torn file — publish through io::AtomicFile"});
    i += what.size();
  }
}

void rule_raw_socket(const std::string& path, const Stripped& s,
                     std::vector<Finding>& out) {
  // src/svc is the one sanctioned socket layer; tests are out of scope
  // (they exercise sockets through svc::Client anyway).
  if (!has_dir(path, "src") && !has_dir(path, "tools") &&
      !has_dir(path, "bench")) {
    return;
  }
  if (has_dir(path, "svc")) return;
  static const char* const kCalls[] = {
      "socket", "accept", "bind",   "listen",  "connect",
      "send",   "recv",   "sendto", "recvfrom"};
  const std::string_view code = s.code;
  for (std::size_t i = 0; i < code.size(); ++i) {
    for (const char* fn : kCalls) {
      if (!word_at(code, i, fn)) continue;
      const std::size_t len = std::string_view(fn).size();
      const std::size_t after = skip_spaces(code, i + len);
      if (after >= code.size() || code[after] != '(') continue;
      // Member calls (obj.send(...), promise.bind(...)) are some other
      // API; the POSIX socket calls are free functions (possibly
      // ::-qualified).
      std::size_t before = i;
      while (before > 0 &&
             std::isspace(static_cast<unsigned char>(code[before - 1]))) {
        --before;
      }
      const bool member =
          (before >= 1 && code[before - 1] == '.') ||
          (before >= 2 && code[before - 2] == '-' &&
           code[before - 1] == '>');
      if (member) continue;
      out.push_back({path, s.line_of(i), "raw-socket",
                     "raw " + std::string(fn) +
                         "() outside src/svc; all socket I/O goes through "
                         "the service layer (svc::Listener/Stream/Client), "
                         "which owns timeouts, partial writes, and EINTR"});
      i += len;
      break;
    }
  }
}

void rule_includes(const std::string& path, const Stripped& s,
                   std::vector<Finding>& out) {
  static const char* const kRepoDirs[] = {
      "analysis", "bgp", "core", "dns", "http", "hypergiant",
      "io", "net", "scan", "tls", "topology",
  };
  std::istringstream lines{s.directives};
  std::string line;
  std::size_t lineno = 0;
  bool saw_pragma_once = false;
  while (std::getline(lines, line)) {
    ++lineno;
    std::string_view t = trim(line);
    if (t.substr(0, 1) != "#") continue;
    std::string_view directive = trim(t.substr(1));
    if (directive.substr(0, 11) == "pragma once") saw_pragma_once = true;
    if (directive.substr(0, 7) != "include") continue;
    std::string_view target = trim(directive.substr(7));
    if (target.empty()) continue;
    const char open = target.front();
    const char close_ch = open == '<' ? '>' : '"';
    std::size_t end = target.find(close_ch, 1);
    if (end == std::string_view::npos) continue;
    std::string_view header = target.substr(1, end - 1);
    if (header.find("..") != std::string_view::npos) {
      out.push_back({path, lineno, "include-relative",
                     "include path escapes its directory; include "
                     "repo headers relative to src/"});
    }
    if (open == '<') {
      std::size_t slash = header.find('/');
      if (slash != std::string_view::npos) {
        std::string_view top = header.substr(0, slash);
        for (const char* dir : kRepoDirs) {
          if (top == dir) {
            out.push_back({path, lineno, "include-quoted",
                           "repo header <" + std::string(header) +
                               "> must be included with quotes"});
            break;
          }
        }
      }
    }
  }
  const std::string_view file = filename_of(path);
  const bool is_header = file.size() > 2 &&
                         (file.substr(file.size() - 2) == ".h" ||
                          (file.size() > 4 &&
                           file.substr(file.size() - 4) == ".hpp"));
  if (is_header && !saw_pragma_once) {
    out.push_back({path, 1, "pragma-once",
                   "header is missing #pragma once (headers must be "
                   "self-sufficient and include-once)"});
  }
}

}  // namespace

std::vector<std::string> unordered_container_names(std::string_view text) {
  std::vector<std::string> names;
  for (std::size_t i = 0; i < text.size(); ++i) {
    std::string_view which;
    if (word_at(text, i, "unordered_map")) {
      which = "unordered_map";
    } else if (word_at(text, i, "unordered_set")) {
      which = "unordered_set";
    } else {
      continue;
    }
    std::size_t pos = skip_spaces(text, i + which.size());
    if (pos >= text.size() || text[pos] != '<') continue;
    int depth = 0;
    while (pos < text.size()) {
      if (text[pos] == '<') ++depth;
      if (text[pos] == '>' && --depth == 0) break;
      ++pos;
    }
    if (pos >= text.size()) continue;
    pos = skip_spaces(text, pos + 1);
    while (pos < text.size() && (text[pos] == '&' || text[pos] == '*')) {
      pos = skip_spaces(text, pos + 1);
    }
    std::size_t end = pos;
    while (end < text.size() && ident_char(text[end])) ++end;
    if (end == pos) continue;
    // `name(` is a function declaration, not a variable.
    const std::size_t next = skip_spaces(text, end);
    if (next < text.size() && text[next] == '(') {
      i = end;
      continue;
    }
    names.emplace_back(text.substr(pos, end - pos));
    i = end;
  }
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());
  return names;
}

std::string format(const Finding& finding) {
  return finding.file + ":" + std::to_string(finding.line) + ": " +
         finding.rule + ": " + finding.message;
}

std::vector<Finding> lint_file(
    const std::string& path, std::string_view text,
    const std::vector<std::string>& extra_unordered_names) {
  Stripped stripped = strip(text);
  Suppressions suppressions = parse_suppressions(path, stripped);

  std::vector<Finding> raw;
  rule_nondet_rand(path, stripped, raw);
  rule_nondet_clock(path, stripped, raw);
  rule_raw_lock(path, stripped, raw);
  rule_unordered_iter(path, stripped, extra_unordered_names, raw);
  rule_float_eq(path, stripped, raw);
  rule_raw_artifact_write(path, stripped, raw);
  rule_raw_socket(path, stripped, raw);
  rule_includes(path, stripped, raw);

  std::vector<Finding> out;
  for (Finding& finding : raw) {
    if (!suppressions.allows(finding.line, finding.rule)) {
      out.push_back(std::move(finding));
    }
  }

  // Suppression rot: an allow() nothing consumed means the rule no longer
  // fires there — the grant is dead weight and must be removed. Two
  // phases so that an allow(stale-suppression) can cover a grandfathered
  // grant, and is itself checked for rot afterwards.
  std::vector<Finding> stale;
  for (auto& [line, grants] : suppressions.by_line) {
    for (const Suppression& grant : grants) {
      if (grant.used || grant.rule == "stale-suppression") continue;
      stale.push_back({path, grant.comment_line, "stale-suppression",
                       "suppression of '" + grant.rule +
                           "' no longer matches a finding; remove the "
                           "allow() comment"});
    }
  }
  for (Finding& finding : stale) {
    if (!suppressions.allows(finding.line, finding.rule)) {
      out.push_back(std::move(finding));
    }
  }
  for (auto& [line, grants] : suppressions.by_line) {
    for (const Suppression& grant : grants) {
      if (grant.used || grant.rule != "stale-suppression") continue;
      out.push_back({path, grant.comment_line, "stale-suppression",
                     "suppression of 'stale-suppression' no longer "
                     "matches a finding; remove the allow() comment"});
    }
  }

  out.insert(out.end(), suppressions.errors.begin(),
             suppressions.errors.end());
  std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    return std::tie(a.line, a.rule) < std::tie(b.line, b.rule);
  });
  return out;
}

std::vector<Finding> lint_tree(const std::vector<std::string>& roots) {
  std::vector<fs::path> files;
  auto lintable = [](const fs::path& p) {
    const std::string ext = p.extension().string();
    return ext == ".h" || ext == ".hpp" || ext == ".cpp" || ext == ".cc";
  };
  auto skip_dir = [](const fs::path& p) {
    const std::string name = p.filename().string();
    return name == ".git" || name == "lint_fixtures" ||
           name == "analyze_fixtures" || name.substr(0, 5) == "build";
  };
  for (const std::string& root : roots) {
    fs::path base(root);
    if (fs::is_regular_file(base)) {
      if (lintable(base)) files.push_back(base);
      continue;
    }
    if (!fs::is_directory(base)) continue;
    fs::recursive_directory_iterator it(base), end;
    while (it != end) {
      if (it->is_directory() && skip_dir(it->path())) {
        it.disable_recursion_pending();
      } else if (it->is_regular_file() && lintable(it->path())) {
        files.push_back(it->path());
      }
      ++it;
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  auto read = [](const fs::path& p) {
    std::ifstream in(p, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
  };

  std::vector<Finding> out;
  for (const fs::path& file : files) {
    std::string text = read(file);
    std::vector<std::string> extra;
    if (file.extension() == ".cpp" || file.extension() == ".cc") {
      fs::path header = file;
      header.replace_extension(".h");
      if (fs::is_regular_file(header)) {
        extra = unordered_container_names(strip(read(header)).code);
      }
    }
    std::vector<Finding> found =
        lint_file(file.generic_string(), text, extra);
    out.insert(out.end(), std::make_move_iterator(found.begin()),
               std::make_move_iterator(found.end()));
  }
  return out;
}

}  // namespace offnet::lint
