#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

/// offnet_lint: a lexer-level linter for the repo's own invariants —
/// rules a generic tool cannot know (see DESIGN.md "Static analysis &
/// enforced invariants" for the rule table and rationale).
///
/// Rule ids:
///   nondet-rand      rand()/srand()/random_device outside net/rng
///   nondet-clock     std::chrono clocks (system/steady/high_resolution)
///                    outside tools/ (the CLI) and obs/stage_timer.* (the
///                    sanctioned monotonic-clock home)
///   raw-lock         .lock()/.unlock() call sites (use RAII guards)
///   unordered-iter   range-for over unordered_map/unordered_set in src/
///   float-eq         float/double equality comparison in tests/
///   include-quoted   repo headers included with <> instead of ""
///   include-relative include paths containing ".."
///   pragma-once      header missing #pragma once
///   bad-suppression  allow(...) comment without a justification
///   raw-artifact-write  ofstream/fopen in src/ or tools/ — final
///                    artifacts must be published via io::AtomicFile
///                    (write-to-temp + flush + rename), never written
///                    in place
///   raw-socket       socket()/accept()/bind()/listen()/connect()/
///                    send()/recv()/sendto()/recvfrom() outside src/svc
///                    — all socket I/O (timeouts, partial writes, EINTR)
///                    lives in the service layer (svc::Listener/Stream/
///                    Client); tools and benches go through svc::Client
///   stale-suppression  an allow(rule-id) comment whose rule no longer
///                    fires on the covered line — suppression rot; the
///                    grant must be deleted (or, if grandfathered, itself
///                    covered by allow(stale-suppression))
///
/// Suppressions: `// offnet-lint: allow(rule-id): justification` on the
/// offending line, or alone on the line directly above it. The
/// justification is mandatory; an empty one is itself a finding.
namespace offnet::lint {

struct Finding {
  std::string file;
  std::size_t line = 0;  // 1-based
  std::string rule;
  std::string message;
};

/// "file:line: rule-id: message"
std::string format(const Finding& finding);

/// Lints one file's contents. `path` drives rule scoping (src/ vs tests/
/// vs tools/) and reporting. `extra_unordered_names` seeds the
/// unordered-iter rule with container names declared elsewhere (the
/// paired header of a .cpp).
std::vector<Finding> lint_file(
    const std::string& path, std::string_view text,
    const std::vector<std::string>& extra_unordered_names = {});

/// Names of unordered_map/unordered_set variables declared in `text`
/// (used to pair a header's members into its .cpp's lint pass).
std::vector<std::string> unordered_container_names(std::string_view text);

/// Walks the given roots (directories or single files), lints every .h
/// and .cpp, and returns findings sorted by file then line. Directories
/// named "build*", ".git", "lint_fixtures", and "analyze_fixtures" are
/// skipped; a .cpp with
/// a same-named .h beside it inherits the header's container names.
std::vector<Finding> lint_tree(const std::vector<std::string>& roots);

}  // namespace offnet::lint
