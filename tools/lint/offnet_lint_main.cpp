#include <cstdio>
#include <string>
#include <vector>

#include "lint.h"

/// offnet_lint — enforce the repo's determinism and locking invariants.
///
/// Usage: offnet_lint [--quiet] <dir-or-file>...
/// Exit codes: 0 clean, 1 findings, 2 usage error.
int main(int argc, char** argv) {
  bool quiet = false;
  std::vector<std::string> roots;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quiet" || arg == "-q") {
      quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      std::puts("usage: offnet_lint [--quiet] <dir-or-file>...\n"
                "Lints .h/.cpp files for the offnet invariants "
                "(see DESIGN.md).\n"
                "Suppress one line with: "
                "// offnet-lint: allow(rule-id): justification");
      return 0;
    } else if (!arg.empty() && arg.front() == '-') {
      std::fprintf(stderr, "offnet_lint: unknown option '%s'\n", arg.c_str());
      return 2;
    } else {
      roots.push_back(arg);
    }
  }
  if (roots.empty()) {
    std::fprintf(stderr, "usage: offnet_lint [--quiet] <dir-or-file>...\n");
    return 2;
  }

  const std::vector<offnet::lint::Finding> findings =
      offnet::lint::lint_tree(roots);
  if (!quiet) {
    for (const offnet::lint::Finding& finding : findings) {
      std::fprintf(stderr, "%s\n", offnet::lint::format(finding).c_str());
    }
    if (!findings.empty()) {
      std::fprintf(stderr, "offnet_lint: %zu finding%s\n", findings.size(),
                   findings.size() == 1 ? "" : "s");
    }
  }
  return findings.empty() ? 0 : 1;
}
