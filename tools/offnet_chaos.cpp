// offnet_chaos — the exhaustive fault-space sweep harness (DESIGN.md
// §15).
//
//   offnet_chaos --sweep --cli BIN --daemon BIN --dir SCRATCH
//                [--slice bounded|full] [--stages CSV]
//                [--max-occurrences N] [--scale S] [--seed N] [--keep]
//
// The sweep enumerates every registered core::fault_stage constant ×
// every occurrence the stage's workload actually crosses (discovered by
// a dry-run counting pass over --fault-counts) × every applicable fault
// mode (throw, abort, and the errno classes ENOSPC/EIO/EMFILE/EINTR),
// runs one workload per cell with that single fault armed via
// --fail-at, and checks the cell's invariants:
//
//   - the exit code lands in the tools/exit_codes.h taxonomy, with
//     abort cells exiting exactly kExitCrashInjected;
//   - no orphan io::AtomicFile temps or torn artifacts survive a
//     non-abort failure, and none survive recovery from an abort;
//   - a run killed mid-series resumes (--resume when a checkpoint was
//     published, a fresh rerun otherwise) to a report byte-identical
//     to the uninterrupted baseline;
//   - funnel metrics are exactly-once: the recovered run's metrics
//     (timing subtree and retry counters aside) match the baseline
//     byte for byte;
//   - offnetd survives every non-abort fault — the final PING answers,
//     SIGTERM drains to exit 0 — and a faulted reload leaves the old
//     snapshot serving (INFO still reports version=1).
//
// The summary table on stdout is deterministic for a fixed corpus seed:
// enumeration order is the sweep table's, and no wall-clock or path
// values appear in it. Exit 0 when every cell verdicts OK, 65 when any
// invariant is violated.
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "core/fault.h"
#include "exit_codes.h"

using namespace offnet;
namespace fs = std::filesystem;

namespace {

struct UsageError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

constexpr std::string_view kKnownFlags[] = {
    "sweep", "cli",   "daemon", "dir",  "slice", "stages",
    "max-occurrences", "scale", "seed", "keep"};

struct Args {
  std::map<std::string, std::string> options;
  const char* get(const std::string& key, const char* fallback) const {
    auto it = options.find(key);
    return it == options.end() ? fallback : it->second.c_str();
  }
  bool has(const std::string& key) const { return options.contains(key); }
};

Args parse_args(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg.substr(0, 2) != "--") {
      throw UsageError("unexpected argument '" + std::string(arg) + "'");
    }
    std::string key(arg.substr(2));
    if (std::find(std::begin(kKnownFlags), std::end(kKnownFlags), key) ==
        std::end(kKnownFlags)) {
      throw UsageError("unknown option --" + key);
    }
    if (i + 1 < argc && std::string_view(argv[i + 1]).substr(0, 2) != "--") {
      args.options[key] = argv[++i];
    } else {
      args.options[key].assign(1, '1');
    }
  }
  return args;
}

int usage() {
  std::fprintf(
      stderr,
      "usage: offnet_chaos --sweep --cli BIN --daemon BIN --dir SCRATCH\n"
      "                    [--slice bounded|full] [--stages CSV]\n"
      "                    [--max-occurrences N] [--scale S] [--seed N]\n"
      "                    [--keep]\n"
      "  --sweep            run the fault-space sweep (required)\n"
      "  --cli BIN          path to offnet_cli\n"
      "  --daemon BIN       path to offnetd\n"
      "  --dir SCRATCH      scratch directory (created; cells live here)\n"
      "  --slice bounded    first and last occurrence per stage only\n"
      "  --slice full       every occurrence (default)\n"
      "  --stages CSV       restrict to these stages (default: all)\n"
      "  --max-occurrences N  cap swept occurrences per stage (0 = all;\n"
      "                     a truncating cap is reported in the summary)\n"
      "  --scale S          corpus world scale (default 0.02)\n"
      "  --seed N           corpus world seed (default 20210823)\n"
      "  --keep             keep per-cell scratch even for OK verdicts\n");
  return tools::kExitUsage;
}

// ---- Small file helpers ----

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Parses a --fault-counts dump: one `stage count` line per stage.
std::map<std::string, std::size_t> parse_counts(const std::string& path) {
  std::map<std::string, std::size_t> counts;
  std::ifstream in(path);
  std::string stage;
  std::size_t n = 0;
  while (in >> stage >> n) counts[stage] = n;
  return counts;
}

/// Every io::AtomicFile staging temp below `dir` — an orphan when found
/// after a completed (or recovered) run.
std::vector<std::string> find_temps(const std::string& dir) {
  std::vector<std::string> temps;
  if (!fs::exists(dir)) return temps;
  for (const auto& entry : fs::recursive_directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.size() > 4 && name.substr(name.size() - 4) == ".tmp") {
      temps.push_back(entry.path().lexically_relative(dir).string());
    }
  }
  std::sort(temps.begin(), temps.end());
  return temps;
}

/// The comparable part of a metrics JSON dump: the wall-clock "timing"
/// subtree and the retry counters (legitimately nonzero in a run whose
/// injected fault was absorbed by a retry) are dropped, along with
/// checkpoint/save_bytes — checkpoints embed the metrics registry, so
/// persisted retry counters change the payload size; everything left —
/// the funnel, checkpoint-save, delta, and series counters — must be
/// exactly-once across baseline, faulted, and recovered runs.
std::string comparable_metrics(const std::string& json) {
  std::istringstream in(json);
  std::string line;
  std::string out;
  int skip_depth = 0;
  while (std::getline(in, line)) {
    if (skip_depth > 0) {
      for (char c : line) {
        if (c == '{') ++skip_depth;
        if (c == '}') --skip_depth;
      }
      continue;
    }
    const std::size_t timing_at = line.find("\"timing\"");
    if (timing_at != std::string::npos &&
        line.find('{', timing_at) != std::string::npos) {
      // Count braces from the opening one: an empty subtree closes on
      // the same line ("timing": {}), a populated one spans lines.
      for (std::size_t i = line.find('{', timing_at); i < line.size(); ++i) {
        if (line[i] == '{') ++skip_depth;
        if (line[i] == '}') --skip_depth;
      }
      continue;
    }
    if (line.find("\"retry/") != std::string::npos) continue;
    if (line.find("\"checkpoint/save_bytes\"") != std::string::npos) continue;
    out += line;
    out += '\n';
  }
  return out;
}

// ---- Subprocess helpers ----

/// Runs `command` through the shell with stdout/stderr captured;
/// returns the exit code, or 128+signal for abnormal termination.
int run_shell(const std::string& command, const std::string& out_path,
              const std::string& err_path) {
  const std::string full =
      command + " > " + out_path + " 2> " + err_path;
  const int status = std::system(full.c_str());
  if (status == -1) return -1;
  if (WIFEXITED(status)) return WEXITSTATUS(status);
  if (WIFSIGNALED(status)) return 128 + WTERMSIG(status);
  return -1;
}

/// A forked offnetd under sweep control.
struct Daemon {
  pid_t pid = -1;
  std::string out_path;
  int exit_code = -1;  // valid after wait()

  /// Waits for "READY" on the daemon's stdout; false when the daemon
  /// exited (or `ms` elapsed) first.
  bool wait_ready(int ms) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
    while (std::chrono::steady_clock::now() < deadline) {
      if (read_file(out_path).find("READY") != std::string::npos) {
        return true;
      }
      int status = 0;
      if (waitpid(pid, &status, WNOHANG) == pid) {
        exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
        pid = -1;
        return false;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    return false;
  }

  /// SIGTERM then a bounded wait; SIGKILL as a last resort. Returns the
  /// daemon's exit code (-1 for signal death / lost child).
  int stop(int ms) {
    if (pid == -1) return exit_code;
    ::kill(pid, SIGTERM);
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
    while (std::chrono::steady_clock::now() < deadline) {
      int status = 0;
      const pid_t got = waitpid(pid, &status, WNOHANG);
      if (got == pid) {
        exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
        pid = -1;
        return exit_code;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    ::kill(pid, SIGKILL);
    int status = 0;
    waitpid(pid, &status, 0);
    pid = -1;
    exit_code = -1;
    return exit_code;
  }
};

Daemon start_daemon(const std::vector<std::string>& argv,
                    const std::string& out_path,
                    const std::string& err_path) {
  Daemon daemon;
  daemon.out_path = out_path;
  std::vector<char*> cargv;
  cargv.reserve(argv.size() + 1);
  for (const std::string& arg : argv) {
    cargv.push_back(const_cast<char*>(arg.c_str()));
  }
  cargv.push_back(nullptr);
  const pid_t pid = ::fork();
  if (pid == 0) {
    if (std::freopen(out_path.c_str(), "w", stdout) == nullptr ||
        std::freopen(err_path.c_str(), "w", stderr) == nullptr) {
      std::_Exit(127);
    }
    ::execv(cargv[0], cargv.data());
    std::_Exit(127);
  }
  daemon.pid = pid;
  return daemon;
}

// ---- The sweep table ----

enum class Workload { kSeries, kService };

/// One registered stage, the workload that reaches it, and the fault
/// modes that make sense there (every stage gets at least two, at least
/// one of them an errno class — the acceptance bar for the sweep).
struct StageSpec {
  const char* stage;
  Workload workload;
  std::array<const char*, 5> modes;
  int n_modes;
};

/// Every core::fault_stage constant, spelled out by name so the
/// fault-stage-unswept analyze rule can hold this file and the registry
/// in lockstep; the static_assert below catches a stage added to
/// kAllStages but not here.
const StageSpec kSweep[] = {
    {core::fault_stage::kFeed, Workload::kSeries,
     {"throw", "abort", "EIO"}, 3},
    {core::fault_stage::kPipeline, Workload::kSeries,
     {"throw", "abort", "EIO"}, 3},
    {core::fault_stage::kCheckpointWrite, Workload::kSeries,
     {"throw", "abort", "ENOSPC"}, 3},
    {core::fault_stage::kArtifactRename, Workload::kSeries,
     {"throw", "abort", "ENOSPC"}, 3},
    {core::fault_stage::kSvcReload, Workload::kService,
     {"throw", "abort", "EIO"}, 3},
    {core::fault_stage::kAtomicWrite, Workload::kSeries,
     {"ENOSPC", "EIO", "EINTR", "throw", "abort"}, 5},
    {core::fault_stage::kAtomicFsync, Workload::kSeries,
     {"EIO", "EINTR", "throw", "abort"}, 4},
    {core::fault_stage::kStreamRead, Workload::kSeries,
     {"EIO", "EINTR", "throw", "abort"}, 4},
    {core::fault_stage::kSvcAccept, Workload::kService,
     {"EMFILE", "EINTR", "throw", "abort"}, 4},
    {core::fault_stage::kSvcRead, Workload::kService,
     {"EIO", "EINTR", "throw", "abort"}, 4},
    {core::fault_stage::kSvcWrite, Workload::kService,
     {"EIO", "EINTR", "throw", "abort"}, 4},
};

static_assert(std::size(kSweep) == std::size(core::fault_stage::kAllStages),
              "every registered fault stage needs a sweep table row");

constexpr int kTaxonomy[] = {
    tools::kExitOk,   tools::kExitUnexpected,    tools::kExitUsage,
    tools::kExitData, tools::kExitCrashInjected, tools::kExitIo,
    tools::kExitTempFail};

bool in_taxonomy(int code) {
  return std::find(std::begin(kTaxonomy), std::end(kTaxonomy), code) !=
         std::end(kTaxonomy);
}

// ---- The sweep itself ----

struct SweepConfig {
  std::string cli;
  std::string daemon;
  std::string scratch;
  std::string corpus;       // export root shared by every cell
  bool bounded = false;
  bool keep = false;
  std::size_t max_occurrences = 0;  // 0 = unlimited
  std::string scale = "0.02";
  std::string seed = "20210823";
};

struct CellResult {
  std::string stage;
  std::size_t occurrence = 0;
  std::string mode;
  int exit_code = 0;
  std::vector<std::string> issues;  // empty = OK

  std::string key() const {
    return stage + ":" + std::to_string(occurrence) + ":" + mode;
  }
};

struct Baseline {
  // Series workload.
  int series_exit = -1;
  std::string series_stdout;
  std::string series_metrics;  // comparable part
  std::map<std::string, std::size_t> series_counts;
  // Service workload.
  std::vector<int> service_steps;
  int service_daemon_exit = -1;
  std::string service_final_version;
  std::map<std::string, std::size_t> service_counts;
};

/// The fixed offnetd conversation every service cell replays. RELOAD
/// points at the corpus root, so a successful reload publishes
/// version 2; INFO after it tells which snapshot is serving.
std::vector<std::string> service_requests(const std::string& corpus) {
  return {"PING", "INFO", "STATS", "RELOAD " + corpus, "INFO", "PING"};
}

std::string version_token(const std::string& text) {
  const std::size_t at = text.find("version=");
  if (at == std::string::npos) return "?";
  std::size_t end = at + 8;
  while (end < text.size() && std::isdigit(text[end]) != 0) ++end;
  return text.substr(at + 8, end - (at + 8));
}

std::string series_command(const SweepConfig& config, const std::string& dir,
                           const std::string& fail_at) {
  std::string command = config.cli + " series --root " + config.corpus +
                        " --checkpoint-dir " + dir + "/ckpt" +
                        " --metrics-out " + dir + "/metrics.json" +
                        " --fault-counts " + dir + "/counts.txt";
  if (!fail_at.empty()) command += " --fail-at " + fail_at;
  return command;
}

std::vector<std::string> daemon_argv(const SweepConfig& config,
                                     const std::string& dir,
                                     const std::string& fail_at) {
  std::vector<std::string> argv = {
      config.daemon,       "--socket", dir + "/sock",
      "--root",            config.corpus,
      "--workers",         "1",
      "--queue",           "8",
      "--metrics-out",     dir + "/metrics.json",
      "--fault-counts",    dir + "/counts.txt"};
  if (!fail_at.empty()) {
    argv.push_back("--fail-at");
    argv.push_back(fail_at);
  }
  return argv;
}

/// One client step; returns its exit code and stores the response text.
int query_step(const SweepConfig& config, const std::string& dir,
               const std::string& request, int step, std::string* response) {
  const std::string out = dir + "/q" + std::to_string(step) + ".out";
  const std::string err = dir + "/q" + std::to_string(step) + ".err";
  const int rc = run_shell(config.cli + " query --socket " + dir +
                               "/sock --timeout-ms 2000 --send '" + request +
                               "'",
                           out, err);
  if (response != nullptr) *response = read_file(out);
  return rc;
}

/// Runs the whole service conversation; returns per-step exit codes and
/// the version reported by the final INFO.
std::vector<int> run_service_steps(const SweepConfig& config,
                                   const std::string& dir,
                                   std::string* final_version) {
  const std::vector<std::string> requests = service_requests(config.corpus);
  std::vector<int> codes;
  std::string last_info;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    std::string response;
    codes.push_back(query_step(config, dir, requests[i],
                               static_cast<int>(i), &response));
    if (requests[i] == "INFO") last_info = response;
  }
  if (final_version != nullptr) *final_version = version_token(last_info);
  return codes;
}

void scan_for_temps(const std::string& dir, const char* when,
                    std::vector<std::string>* issues) {
  const std::vector<std::string> temps = find_temps(dir);
  if (!temps.empty()) {
    issues->push_back(std::string("orphan temp ") + when + ": " + temps[0] +
                      (temps.size() > 1
                           ? " (+" + std::to_string(temps.size() - 1) + ")"
                           : ""));
  }
}

/// One series-workload cell: fault the run, then prove the world can be
/// put back exactly — resume when a checkpoint was published, rerun
/// from scratch otherwise, and compare the recovered report and metrics
/// byte-for-byte against the baseline.
CellResult run_series_cell(const SweepConfig& config,
                           const Baseline& baseline,
                           const std::string& stage, std::size_t occurrence,
                           const std::string& mode) {
  CellResult cell{stage, occurrence, mode, 0, {}};
  const std::string dir = config.scratch + "/cells/" + stage + "." +
                          std::to_string(occurrence) + "." + mode;
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::string spec =
      stage + ":" + std::to_string(occurrence) + ":" + mode;
  const int rc = run_shell(series_command(config, dir, spec),
                           dir + "/run.out", dir + "/run.err");
  cell.exit_code = rc;

  if (!in_taxonomy(rc)) {
    cell.issues.push_back("exit " + std::to_string(rc) +
                          " outside the exit-code taxonomy");
  }
  if (mode == "abort") {
    if (rc != tools::kExitCrashInjected) {
      cell.issues.push_back("abort cell exited " + std::to_string(rc) +
                            ", want 70");
    }
  } else {
    if (rc == tools::kExitCrashInjected) {
      cell.issues.push_back("non-abort cell exited 70");
    }
    // The counting seam proves the fault actually fired: the armed
    // crossing is counted before the fault is raised. The counts dump
    // itself goes through io::AtomicFile, so for the AtomicFile-family
    // stages a missing dump is the fault landing on the dump's own
    // write — evidence of firing, not of a miss.
    const bool counts_may_self_destruct =
        stage == core::fault_stage::kAtomicWrite ||
        stage == core::fault_stage::kAtomicFsync ||
        stage == core::fault_stage::kArtifactRename;
    if (fs::exists(dir + "/counts.txt")) {
      const auto counts = parse_counts(dir + "/counts.txt");
      const auto it = counts.find(stage);
      if (it == counts.end() || it->second < occurrence) {
        cell.issues.push_back(
            "stage crossed " +
            std::to_string(it == counts.end() ? 0 : it->second) +
            " times; armed occurrence " + std::to_string(occurrence) +
            " never fired");
      }
    } else if (!counts_may_self_destruct) {
      cell.issues.push_back("faulted run left no fault-counts dump");
    }
    // Failure paths must leave no staging temps behind (abort is the
    // sanctioned exception: recovery below must clean those up).
    scan_for_temps(dir, "after faulted run", &cell.issues);
  }

  if (rc == tools::kExitOk) {
    // The fault was absorbed (EINTR retry, or a supervised retry of the
    // faulted snapshot): the report and the funnel metrics must be
    // byte-identical to the uninterrupted baseline.
    if (read_file(dir + "/run.out") != baseline.series_stdout) {
      cell.issues.push_back("recovered report differs from baseline");
    }
    if (comparable_metrics(read_file(dir + "/metrics.json")) !=
        baseline.series_metrics) {
      cell.issues.push_back("funnel metrics differ from baseline");
    }
  } else {
    // The run died. Resume from the published checkpoint when there is
    // one, rerun from scratch otherwise — either way the final report
    // must be byte-identical to a run that never faulted.
    std::string recover = series_command(config, dir, "");
    if (fs::exists(dir + "/ckpt/checkpoint.offnet")) recover += " --resume";
    const int rc2 = run_shell(recover, dir + "/recover.out",
                              dir + "/recover.err");
    if (rc2 != baseline.series_exit) {
      cell.issues.push_back("recovery exited " + std::to_string(rc2) +
                            ", baseline " +
                            std::to_string(baseline.series_exit));
    }
    if (read_file(dir + "/recover.out") != baseline.series_stdout) {
      cell.issues.push_back("recovered report differs from baseline");
    }
    if (comparable_metrics(read_file(dir + "/metrics.json")) !=
        baseline.series_metrics) {
      cell.issues.push_back("funnel metrics differ from baseline");
    }
    scan_for_temps(dir, "after recovery", &cell.issues);
  }

  if (cell.issues.empty() && !config.keep) fs::remove_all(dir);
  return cell;
}

/// One service-workload cell: fault offnetd mid-conversation. Non-abort
/// faults must be contained — the final PING answers and SIGTERM drains
/// to exit 0 — and a faulted reload must leave version 1 serving.
CellResult run_service_cell(const SweepConfig& config,
                            const Baseline& baseline,
                            const std::string& stage, std::size_t occurrence,
                            const std::string& mode) {
  CellResult cell{stage, occurrence, mode, 0, {}};
  const std::string dir = config.scratch + "/cells/" + stage + "." +
                          std::to_string(occurrence) + "." + mode;
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::string spec =
      stage + ":" + std::to_string(occurrence) + ":" + mode;
  Daemon daemon = start_daemon(daemon_argv(config, dir, spec),
                               dir + "/daemon.out", dir + "/daemon.err");
  if (!daemon.wait_ready(30'000)) {
    daemon.stop(5'000);
    cell.exit_code = daemon.exit_code;
    cell.issues.push_back("daemon never reached READY");
    return cell;
  }

  std::string final_version;
  const std::vector<int> steps =
      run_service_steps(config, dir, &final_version);
  // Liveness probe, retried: the armed fault fires at most once, so if
  // it landed on the probe itself (e.g. svc-write on the last scripted
  // step's successor) the second attempt must get through.
  bool alive = false;
  for (int attempt = 0; attempt < 3 && !alive; ++attempt) {
    alive = query_step(config, dir, "PING", 90 + attempt, nullptr) ==
            tools::kExitOk;
  }
  const int daemon_exit = daemon.stop(10'000);
  cell.exit_code = daemon_exit;

  if (mode == "abort") {
    if (daemon_exit != tools::kExitCrashInjected) {
      cell.issues.push_back("abort cell: daemon exited " +
                            std::to_string(daemon_exit) + ", want 70");
    }
  } else {
    if (daemon_exit != tools::kExitOk) {
      cell.issues.push_back("fault not contained: daemon exited " +
                            std::to_string(daemon_exit));
    }
    if (!alive) {
      cell.issues.push_back("daemon stopped answering PING after the fault");
    }
    const auto counts = parse_counts(dir + "/counts.txt");
    const auto it = counts.find(stage);
    if (it == counts.end() || it->second < occurrence) {
      cell.issues.push_back("stage crossed " +
                            std::to_string(it == counts.end() ? 0
                                                              : it->second) +
                            " times; armed occurrence " +
                            std::to_string(occurrence) + " never fired");
    }
    scan_for_temps(dir, "after drain", &cell.issues);
    if (stage == core::fault_stage::kSvcReload && mode != "EINTR") {
      // The reload must fail closed: ERR to the client, old snapshot
      // still serving.
      if (steps[3] != tools::kExitData) {
        cell.issues.push_back("faulted RELOAD exited " +
                              std::to_string(steps[3]) + ", want 65");
      }
      if (final_version != "1") {
        cell.issues.push_back("reload fault published version " +
                              final_version + "; old snapshot lost");
      }
    } else if (mode == "EINTR") {
      // Retried seam: the whole conversation must match the baseline.
      if (steps != baseline.service_steps) {
        cell.issues.push_back("EINTR conversation diverged from baseline");
      }
      if (final_version != baseline.service_final_version) {
        cell.issues.push_back("EINTR cell final version " + final_version +
                              ", baseline " +
                              baseline.service_final_version);
      }
    }
  }
  for (int step : steps) {
    if (!in_taxonomy(step) && step != 128 + SIGPIPE) {
      cell.issues.push_back("client exit " + std::to_string(step) +
                            " outside the exit-code taxonomy");
    }
  }

  if (cell.issues.empty() && !config.keep) fs::remove_all(dir);
  return cell;
}

/// Builds the shared corpus and measures both baselines.
Baseline prepare(const SweepConfig& config) {
  Baseline baseline;
  std::fprintf(stderr, "chaos: exporting corpus...\n");
  for (const char* month : {"2013-10", "2014-01"}) {
    const std::string dir = config.corpus + "/" + month;
    fs::create_directories(dir);
    const int rc = run_shell(config.cli + " export --out " + dir +
                                 " --scale " + config.scale + " --seed " +
                                 config.seed + " --month " + month,
                             config.scratch + "/export.out",
                             config.scratch + "/export.err");
    if (rc != 0) {
      throw std::runtime_error("corpus export failed (exit " +
                               std::to_string(rc) + "): " +
                               read_file(config.scratch + "/export.err"));
    }
  }

  std::fprintf(stderr, "chaos: baseline series run (dry-run counting)...\n");
  const std::string dir = config.scratch + "/baseline";
  fs::create_directories(dir);
  baseline.series_exit = run_shell(series_command(config, dir, ""),
                                   dir + "/run.out", dir + "/run.err");
  if (baseline.series_exit != tools::kExitOk) {
    throw std::runtime_error("baseline series run failed (exit " +
                             std::to_string(baseline.series_exit) + "): " +
                             read_file(dir + "/run.err"));
  }
  baseline.series_stdout = read_file(dir + "/run.out");
  baseline.series_metrics =
      comparable_metrics(read_file(dir + "/metrics.json"));
  baseline.series_counts = parse_counts(dir + "/counts.txt");

  std::fprintf(stderr, "chaos: baseline service run...\n");
  const std::string sdir = config.scratch + "/baseline_svc";
  fs::create_directories(sdir);
  Daemon daemon = start_daemon(daemon_argv(config, sdir, ""),
                               sdir + "/daemon.out", sdir + "/daemon.err");
  if (!daemon.wait_ready(30'000)) {
    daemon.stop(5'000);
    throw std::runtime_error("baseline daemon never reached READY: " +
                             read_file(sdir + "/daemon.err"));
  }
  baseline.service_steps =
      run_service_steps(config, sdir, &baseline.service_final_version);
  baseline.service_daemon_exit = daemon.stop(10'000);
  if (baseline.service_daemon_exit != tools::kExitOk) {
    throw std::runtime_error("baseline daemon exited " +
                             std::to_string(baseline.service_daemon_exit));
  }
  for (std::size_t i = 0; i < baseline.service_steps.size(); ++i) {
    if (baseline.service_steps[i] != tools::kExitOk) {
      throw std::runtime_error("baseline service step " + std::to_string(i) +
                               " exited " +
                               std::to_string(baseline.service_steps[i]));
    }
  }
  baseline.service_counts = parse_counts(sdir + "/counts.txt");
  return baseline;
}

std::vector<std::size_t> occurrences_to_sweep(const SweepConfig& config,
                                              std::size_t total,
                                              bool* truncated) {
  std::vector<std::size_t> occurrences;
  if (total == 0) return occurrences;
  if (config.bounded) {
    occurrences.push_back(1);
    if (total > 1) occurrences.push_back(total);
    return occurrences;
  }
  std::size_t last = total;
  if (config.max_occurrences != 0 && config.max_occurrences < total) {
    last = config.max_occurrences;
    *truncated = true;
  }
  for (std::size_t occ = 1; occ <= last; ++occ) occurrences.push_back(occ);
  return occurrences;
}

int run_sweep(const SweepConfig& config,
              const std::vector<std::string>& only_stages) {
  fs::create_directories(config.scratch);
  fs::create_directories(config.corpus);
  const Baseline baseline = prepare(config);

  std::vector<CellResult> cells;
  std::map<std::string, std::size_t> per_stage_cells;
  bool truncated = false;
  for (const StageSpec& spec : kSweep) {
    if (!only_stages.empty() &&
        std::find(only_stages.begin(), only_stages.end(), spec.stage) ==
            only_stages.end()) {
      continue;
    }
    const auto& counts = spec.workload == Workload::kSeries
                             ? baseline.series_counts
                             : baseline.service_counts;
    const auto it = counts.find(spec.stage);
    const std::size_t total = it == counts.end() ? 0 : it->second;
    if (total == 0) {
      CellResult missing{spec.stage, 0, "-", -1, {}};
      missing.issues.push_back(
          "stage never crossed by its workload; fault space unreachable");
      cells.push_back(std::move(missing));
      continue;
    }
    for (std::size_t occ : occurrences_to_sweep(config, total, &truncated)) {
      for (int m = 0; m < spec.n_modes; ++m) {
        const std::string mode = spec.modes[static_cast<std::size_t>(m)];
        std::fprintf(stderr, "chaos: cell %s:%zu:%s\n", spec.stage, occ,
                     mode.c_str());
        CellResult cell =
            spec.workload == Workload::kSeries
                ? run_series_cell(config, baseline, spec.stage, occ, mode)
                : run_service_cell(config, baseline, spec.stage, occ, mode);
        ++per_stage_cells[spec.stage];
        cells.push_back(std::move(cell));
      }
    }
  }

  // ---- Deterministic summary ----
  std::printf("offnet_chaos sweep summary (%s slice)\n",
              config.bounded ? "bounded" : "full");
  if (truncated) {
    std::printf("note: occurrence space truncated at --max-occurrences "
                "%zu\n",
                config.max_occurrences);
  }
  std::printf("%-36s %-6s %s\n", "cell", "exit", "verdict");
  std::size_t violations = 0;
  for (const CellResult& cell : cells) {
    if (cell.issues.empty()) {
      std::printf("%-36s %-6d OK\n", cell.key().c_str(), cell.exit_code);
    } else {
      ++violations;
      std::printf("%-36s %-6d VIOLATION\n", cell.key().c_str(),
                  cell.exit_code);
      for (const std::string& issue : cell.issues) {
        std::printf("    - %s\n", issue.c_str());
      }
    }
  }
  std::printf("\nper-stage cells:");
  for (const StageSpec& spec : kSweep) {
    if (!only_stages.empty() &&
        std::find(only_stages.begin(), only_stages.end(), spec.stage) ==
            only_stages.end()) {
      continue;
    }
    const auto it = per_stage_cells.find(spec.stage);
    std::printf(" %s=%zu", spec.stage,
                it == per_stage_cells.end() ? 0 : it->second);
  }
  std::printf("\n%zu cells, %zu violations\n", cells.size(), violations);
  return violations == 0 ? tools::kExitOk : tools::kExitData;
}

int run(int argc, char** argv) {
  const Args args = parse_args(argc, argv);
  if (!args.has("sweep") || !args.has("cli") || !args.has("daemon") ||
      !args.has("dir")) {
    return usage();
  }
  SweepConfig config;
  config.cli = args.get("cli", "");
  config.daemon = args.get("daemon", "");
  config.scratch = args.get("dir", "");
  config.corpus = config.scratch + "/corpus";
  config.keep = args.has("keep");
  config.scale = args.get("scale", "0.02");
  config.seed = args.get("seed", "20210823");
  const std::string slice = args.get("slice", "full");
  if (slice == "bounded") {
    config.bounded = true;
  } else if (slice != "full") {
    throw UsageError("--slice must be bounded or full");
  }
  if (args.has("max-occurrences")) {
    char* end = nullptr;
    const char* text = args.get("max-occurrences", "0");
    const unsigned long n = std::strtoul(text, &end, 10);
    if (end == text || *end != '\0') {
      throw UsageError("--max-occurrences must be an integer");
    }
    config.max_occurrences = static_cast<std::size_t>(n);
  }
  std::vector<std::string> only_stages;
  if (args.has("stages")) {
    std::string_view csv = args.get("stages", "");
    while (!csv.empty()) {
      const std::size_t comma = csv.find(',');
      only_stages.emplace_back(csv.substr(0, comma));
      csv = comma == std::string_view::npos ? std::string_view()
                                            : csv.substr(comma + 1);
    }
    for (const std::string& stage : only_stages) {
      const auto known = std::find_if(
          std::begin(kSweep), std::end(kSweep),
          [&](const StageSpec& spec) { return stage == spec.stage; });
      if (known == std::end(kSweep)) {
        throw UsageError("unknown stage '" + stage + "'");
      }
    }
  }
  return run_sweep(config, only_stages);
}

}  // namespace

int main(int argc, char** argv) {
  // The sweep talks to sockets through offnet_cli only, but a daemon
  // dying mid-conversation can still SIGPIPE the harness through an
  // inherited descriptor; never die on it.
  std::signal(SIGPIPE, SIG_IGN);
  try {
    return run(argc, argv);
  } catch (const UsageError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return tools::kExitIo;
  }
}
