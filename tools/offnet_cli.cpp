// offnet command-line tool.
//
//   offnet_cli simulate [--scale S] [--seed N] [--month YYYY-MM]
//                       [--scanner r7|cs|ac]
//       Build a simulated world and print every HG's inferred footprint.
//
//   offnet_cli export --out DIR [--scale S] [--seed N] [--month YYYY-MM]
//       Write the snapshot in the documented dataset formats
//       (relationships.txt, organizations.txt, prefix2as.txt,
//       certificates.tsv, hosts.tsv, headers.tsv).
//
//   offnet_cli analyze --dir DIR --month YYYY-MM
//       Load a dataset from DIR (same file names as `export`) and run
//       the off-net inference pipeline on it — the path for real data.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <optional>
#include <string>

#include "core/pipeline.h"
#include "io/exporter.h"
#include "io/loaders.h"
#include "net/table.h"
#include "scan/world.h"

using namespace offnet;

namespace {

struct Args {
  std::string command;
  std::map<std::string, std::string> options;

  const char* get(const std::string& key, const char* fallback) const {
    auto it = options.find(key);
    return it == options.end() ? fallback : it->second.c_str();
  }
};

std::optional<Args> parse_args(int argc, char** argv) {
  if (argc < 2) return std::nullopt;
  Args args;
  args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg.substr(0, 2) != "--" || i + 1 >= argc) return std::nullopt;
    args.options[std::string(arg.substr(2))] = argv[++i];
  }
  return args;
}

int usage() {
  std::fprintf(stderr,
               "usage: offnet_cli simulate|export|analyze [options]\n"
               "  simulate [--scale S] [--seed N] [--month YYYY-MM] "
               "[--scanner r7|cs|ac]\n"
               "  export   --out DIR [--scale S] [--seed N] "
               "[--month YYYY-MM]\n"
               "  analyze  --dir DIR --month YYYY-MM\n");
  return 2;
}

void print_result(const topo::Topology& topology,
                  const core::SnapshotResult& result) {
  net::TextTable table({"Hypergiant", "confirmed off-net ASes",
                        "cert-only ASes", "off-net IPs", "on-net IPs"});
  for (const core::HgFootprint& fp : result.per_hg) {
    if (fp.candidate_ases.empty() && fp.onnet_ips == 0) continue;
    table.add(fp.name, fp.confirmed_ases().size(), fp.candidate_ases.size(),
              fp.confirmed_ips, fp.onnet_ips);
  }
  std::fputs(table.to_string().c_str(), stdout);
  std::printf("\ncorpus: %zu records, %zu valid, %zu ASes, %zu ASes with "
              "any HG certificate\n",
              result.stats.total_records, result.stats.valid_cert_ips,
              result.stats.ases_with_certs, result.stats.ases_with_any_hg);
  (void)topology;
}

std::size_t snapshot_from(const Args& args) {
  auto month = net::YearMonth::parse(args.get("month", "2021-04"));
  if (!month) throw std::runtime_error("malformed --month");
  auto index = net::snapshot_index(*month);
  if (!index) {
    throw std::runtime_error(
        "--month must be a quarterly study snapshot (2013-10 .. 2021-04)");
  }
  return *index;
}

scan::World build_world(const Args& args) {
  scan::WorldConfig config;
  double scale = std::atof(args.get("scale", "0.05"));
  config.topology_scale = scale;
  config.background_scale = scale / 50.0;  // same ratio as the benches
  config.seed = std::strtoull(args.get("seed", "20210823"), nullptr, 10);
  std::fprintf(stderr, "building world (scale %.2f, seed %s)...\n", scale,
               args.get("seed", "20210823"));
  return scan::World(config);
}

int cmd_simulate(const Args& args) {
  scan::World world = build_world(args);
  std::size_t t = snapshot_from(args);
  scan::ScannerKind kind = scan::ScannerKind::kRapid7;
  std::string scanner = args.get("scanner", "r7");
  if (scanner == "cs") kind = scan::ScannerKind::kCensys;
  if (scanner == "ac") kind = scan::ScannerKind::kCertigo;
  if (!world.scanner_available(t, kind)) {
    std::fprintf(stderr, "scanner has no data at that snapshot\n");
    return 1;
  }
  auto snap = world.scan(t, kind);
  core::OffnetPipeline pipeline(world.topology(), world.ip2as(),
                                world.certs(), world.roots());
  print_result(world.topology(), pipeline.run(snap));
  return 0;
}

int cmd_export(const Args& args) {
  std::string dir = args.get("out", "");
  if (dir.empty()) return usage();
  scan::World world = build_world(args);
  std::size_t t = snapshot_from(args);
  auto snap = world.scan(t, scan::ScannerKind::kRapid7);

  auto open = [&dir](const char* name) {
    std::ofstream out(dir + "/" + name);
    if (!out) throw std::runtime_error(std::string("cannot write ") + name);
    return out;
  };
  std::ofstream rel = open("relationships.txt");
  std::ofstream org = open("organizations.txt");
  std::ofstream pfx = open("prefix2as.txt");
  std::ofstream certs = open("certificates.tsv");
  std::ofstream hosts = open("hosts.tsv");
  std::ofstream headers = open("headers.tsv");
  io::export_dataset(world, snap,
                     io::ExportStreams{rel, org, pfx, certs, hosts, headers});
  std::printf("exported snapshot %s (%zu cert records) to %s/\n",
              net::study_snapshots()[t].to_string().c_str(),
              snap.certs().size(), dir.c_str());
  return 0;
}

int cmd_analyze(const Args& args) {
  std::string dir = args.get("dir", "");
  if (dir.empty()) return usage();
  auto month = net::YearMonth::parse(args.get("month", "2021-04"));
  if (!month) return usage();

  auto open = [&dir](const char* name) {
    std::ifstream in(dir + "/" + name);
    if (!in) throw std::runtime_error(std::string("cannot read ") + name);
    return in;
  };
  std::ifstream rel = open("relationships.txt");
  std::ifstream org = open("organizations.txt");
  std::ifstream pfx = open("prefix2as.txt");
  std::ifstream certs = open("certificates.tsv");
  std::ifstream hosts = open("hosts.tsv");
  io::Dataset dataset = io::load_dataset(rel, org, pfx, certs, hosts, *month);
  {
    std::ifstream headers(dir + "/headers.tsv");
    if (headers) dataset.add_headers(headers);
  }
  core::OffnetPipeline pipeline(dataset.topology(), dataset.ip2as(),
                                dataset.certs(), dataset.roots());
  print_result(dataset.topology(), pipeline.run(dataset.snapshot()));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  auto args = parse_args(argc, argv);
  if (!args) return usage();
  try {
    if (args->command == "simulate") return cmd_simulate(*args);
    if (args->command == "export") return cmd_export(*args);
    if (args->command == "analyze") return cmd_analyze(*args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
