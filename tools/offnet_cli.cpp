// offnet command-line tool.
//
//   offnet_cli simulate [--scale S] [--seed N] [--month YYYY-MM]
//                       [--scanner r7|cs|ac]
//       Build a simulated world and print every HG's inferred footprint.
//
//   offnet_cli export --out DIR [--scale S] [--seed N] [--month YYYY-MM]
//       Write the snapshot in the documented dataset formats
//       (relationships.txt, organizations.txt, prefix2as.txt,
//       certificates.tsv, hosts.tsv, headers.tsv).
//
//   offnet_cli analyze --dir DIR --month YYYY-MM
//                      [--permissive] [--max-error-fraction F]
//       Load a dataset from DIR (same file names as `export`) and run
//       the off-net inference pipeline on it — the path for real data.
//       With --permissive, malformed input lines are skipped (within the
//       per-file error budget) and the ingestion report is printed.
//
//   offnet_cli series --root DIR [--permissive] [--max-error-fraction F]
//       Degraded-mode longitudinal run: expects DIR/<YYYY-MM>/ per study
//       snapshot with the `analyze` file layout. Missing or corrupt
//       snapshots are annotated and skipped instead of aborting the
//       study; prints a per-snapshot health summary.
//
//   offnet_cli query (--socket PATH | --port N) --send 'REQUEST'
//                    [--timeout-ms N]
//       Send one line-protocol request to a running offnetd and print
//       the response. The exit code classifies it: OK 0, ERR 65 (data),
//       BUSY 75 (tempfail), transport failure 74 (I/O).
//
// Exit codes follow the tools/exit_codes.h taxonomy: 0 success, 64 usage,
// 65 data, 70 injected crash, 74 I/O, 75 tempfail, 1 unexpected.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/checkpoint.h"
#include "core/delta_cache.h"
#include "core/fault.h"
#include "core/longitudinal.h"
#include "core/pipeline.h"
#include "exit_codes.h"
#include "io/atomic_file.h"
#include "scan/export.h"
#include "io/loaders.h"
#include "net/table.h"
#include "obs/exporter.h"
#include "obs/metrics.h"
#include "scan/world.h"
#include "svc/client.h"

using namespace offnet;

namespace {

/// CLI-local metric names (the export command's accounting), following
/// the same registry convention as core::metric_names.
namespace metric_names {
inline constexpr const char* kExportCertRecords = "export/cert_records";
inline constexpr const char* kExportFiles = "export/files";
}  // namespace metric_names

/// Bad command lines exit with tools::kExitUsage, distinct from bad
/// data — scripts retrying a flaky corpus must not retry a typo.
struct UsageError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

struct Args {
  std::string command;
  std::map<std::string, std::string> options;

  const char* get(const std::string& key, const char* fallback) const {
    auto it = options.find(key);
    return it == options.end() ? fallback : it->second.c_str();
  }
  bool has(const std::string& key) const { return options.contains(key); }
};

constexpr std::string_view kKnownFlags[] = {
    "scale", "seed", "month",      "scanner",
    "out",   "dir",  "root",       "permissive", "max-error-fraction",
    "threads", "metrics-out", "stream",
    "checkpoint-dir", "resume", "max-retries", "crash-after",
    "delta", "no-delta",
    "fail-at", "fault-counts",
    "socket", "port", "send", "timeout-ms"};

/// The injector behind --fail-at and --fault-counts. One object serves
/// both halves of the plan: the supervisor crosses the control-flow
/// stages on it directly, and main() installs it as the process-wide
/// syscall seam so io::AtomicFile / LineReader cross the same plan.
core::FaultInjector& cli_faults() {
  static core::FaultInjector faults;
  return faults;
}
bool g_cli_faults_active = false;

std::optional<Args> parse_args(int argc, char** argv) {
  if (argc < 2) return std::nullopt;
  Args args;
  args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg.substr(0, 2) != "--") return std::nullopt;
    std::string key(arg.substr(2));
    if (std::find(std::begin(kKnownFlags), std::end(kKnownFlags), key) ==
        std::end(kKnownFlags)) {
      std::fprintf(stderr, "unknown option --%s\n", key.c_str());
      return std::nullopt;
    }
    // A flag followed by another option (or nothing) is valueless.
    if (i + 1 < argc && std::string_view(argv[i + 1]).substr(0, 2) != "--") {
      args.options[key] = argv[++i];
    } else {
      args.options[key] = "1";
    }
  }
  return args;
}

int usage() {
  std::fprintf(stderr,
               "usage: offnet_cli simulate|export|analyze|series|query "
               "[options]\n"
               "  simulate [--scale S] [--seed N] [--month YYYY-MM] "
               "[--scanner r7|cs|ac] [--threads N]\n"
               "  export   --out DIR [--scale S] [--seed N] "
               "[--month YYYY-MM]\n"
               "  analyze  --dir DIR --month YYYY-MM [--permissive] "
               "[--max-error-fraction F] [--threads N] [--stream]\n"
               "  series   --root DIR [--permissive] "
               "[--max-error-fraction F] [--threads N] [--stream]\n"
               "           [--checkpoint-dir DIR] [--resume] "
               "[--max-retries N] [--crash-after N] [--delta|--no-delta]\n"
               "  --threads N: pipeline worker threads (0 = all hardware "
               "threads); results are identical at any N\n"
               "  --stream: parse input on --threads worker threads while "
               "reading in bounded batches; reports, metrics,\n"
               "           and results are byte-identical to the default "
               "single-threaded load\n"
               "  --metrics-out FILE: write pipeline metrics (stage counts, "
               "drop reasons, timings) as JSON; all commands\n"
               "  --checkpoint-dir DIR: supervised series; save the run's "
               "checkpoint to DIR after every snapshot\n"
               "  --resume: restore the checkpoint and continue where the "
               "previous run stopped\n"
               "  --max-retries N: attempts per failing snapshot before it "
               "is quarantined (default 2 retries)\n"
               "  --crash-after N: testing aid; hard-kill the run during "
               "the (N+1)th checkpoint publish\n"
               "  --delta: reuse per-cert and per-IP verdicts across the "
               "series' snapshots (DESIGN.md §12); results are\n"
               "           byte-identical to --no-delta (the default) and "
               "the cache rides along in checkpoints\n"
               "  query    (--socket PATH | --port N) --send 'REQUEST' "
               "[--timeout-ms N]\n"
               "           one offnetd request; exit 0 on OK, 65 on ERR, "
               "75 on BUSY, 74 on transport failure\n"
               "  --fail-at STAGE:OCC:MODE[,...]: testing aid; fault the "
               "OCC-th crossing of STAGE (mode: throw, abort,\n"
               "           or an errno class ENOSPC|EIO|EMFILE|EINTR); "
               "any command\n"
               "  --fault-counts FILE: write per-stage seam-crossing "
               "counts after the run (offnet_chaos's dry-run pass);\n"
               "           any command\n");
  return tools::kExitUsage;
}

core::PipelineOptions pipeline_options_from(const Args& args) {
  core::PipelineOptions options;
  if (args.has("threads")) {
    const char* text = args.get("threads", "1");
    char* end = nullptr;
    unsigned long threads = std::strtoul(text, &end, 10);
    if (end == text || *end != '\0' || threads > 1024) {
      throw UsageError("--threads must be an integer in [0, 1024]");
    }
    options.n_threads = static_cast<std::size_t>(threads);
  }
  return options;
}

io::ReadOptions read_options_from(const Args& args) {
  io::ReadOptions options;
  if (args.has("permissive")) options.mode = io::ReadMode::kPermissive;
  if (args.has("max-error-fraction")) {
    options.mode = io::ReadMode::kPermissive;  // implied
    const char* text = args.get("max-error-fraction", "");
    char* end = nullptr;
    double budget = std::strtod(text, &end);
    // The negated form is NaN-proof: `nan` compares false against both
    // bounds, so `budget < 0.0 || budget > 1.0` accepted it and every
    // fraction comparison downstream silently came out false.
    if (end == text || *end != '\0' || !(budget >= 0.0 && budget <= 1.0)) {
      throw UsageError("--max-error-fraction must be a number in [0, 1]");
    }
    options.max_error_fraction = budget;
  }
  return options;
}

/// Writes the registry as JSON when --metrics-out was given. Call once,
/// at the end of a command, so the file reflects the whole run.
void maybe_write_metrics(const Args& args, obs::Registry& metrics) {
  if (!args.has("metrics-out")) return;
  const char* path = args.get("metrics-out", "");
  io::AtomicFile::write(path, obs::MetricsExporter::to_json(metrics));
  std::fprintf(stderr, "wrote metrics to %s\n", path);
}

/// Writes the per-stage seam-crossing counts observed this run, one
/// `stage count` line per registered stage (zeros included, so a stage
/// whose workload never reaches it is visible). offnet_chaos's dry-run
/// pass reads this to discover each stage's occurrence space.
/// Best-effort: a faulted run must still exit with its fault's code.
void maybe_write_fault_counts(const Args& args) {
  if (!args.has("fault-counts")) return;
  try {
    const auto counts = cli_faults().occurrence_counts();
    std::string text;
    for (const char* stage : core::fault_stage::kAllStages) {
      const auto it = counts.find(stage);
      text += std::string(stage) + " " +
              std::to_string(it == counts.end() ? 0 : it->second) + "\n";
    }
    io::AtomicFile::write(args.get("fault-counts", ""), text);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "warning: cannot write fault counts: %s\n",
                 e.what());
  }
}

std::size_t parse_count(const Args& args, const char* flag,
                        std::size_t max) {
  const char* text = args.get(flag, "");
  char* end = nullptr;
  unsigned long n = std::strtoul(text, &end, 10);
  if (end == text || *end != '\0' || n > max) {
    throw UsageError(std::string("--") + flag +
                     " must be an integer in [0, " + std::to_string(max) +
                     "]");
  }
  return static_cast<std::size_t>(n);
}

void print_result(const topo::Topology& topology,
                  const core::SnapshotResult& result) {
  net::TextTable table({"Hypergiant", "confirmed off-net ASes",
                        "cert-only ASes", "off-net IPs", "on-net IPs"});
  for (const core::HgFootprint& fp : result.per_hg) {
    if (fp.candidate_ases.empty() && fp.onnet_ips == 0) continue;
    table.add(fp.name, fp.confirmed_ases().size(), fp.candidate_ases.size(),
              fp.confirmed_ips, fp.onnet_ips);
  }
  std::fputs(table.to_string().c_str(), stdout);
  std::printf("\ncorpus: %zu records, %zu valid, %zu ASes, %zu ASes with "
              "any HG certificate\n",
              result.stats.total_records, result.stats.valid_cert_ips,
              result.stats.ases_with_certs, result.stats.ases_with_any_hg);
  (void)topology;
}

std::size_t snapshot_from(const Args& args) {
  auto month = net::YearMonth::parse(args.get("month", "2021-04"));
  if (!month) throw UsageError("malformed --month");
  auto index = net::snapshot_index(*month);
  if (!index) {
    throw UsageError(
        "--month must be a quarterly study snapshot (2013-10 .. 2021-04)");
  }
  return *index;
}

scan::World build_world(const Args& args) {
  scan::WorldConfig config;
  double scale = std::atof(args.get("scale", "0.05"));
  config.topology_scale = scale;
  config.background_scale = scale / 50.0;  // same ratio as the benches
  config.seed = std::strtoull(args.get("seed", "20210823"), nullptr, 10);
  std::fprintf(stderr, "building world (scale %.2f, seed %s)...\n", scale,
               args.get("seed", "20210823"));
  return scan::World(config);
}

int cmd_simulate(const Args& args) {
  scan::World world = build_world(args);
  std::size_t t = snapshot_from(args);
  scan::ScannerKind kind = scan::ScannerKind::kRapid7;
  std::string scanner = args.get("scanner", "r7");
  if (scanner == "cs") kind = scan::ScannerKind::kCensys;
  if (scanner == "ac") kind = scan::ScannerKind::kCertigo;
  if (!world.scanner_available(t, kind)) {
    std::fprintf(stderr, "scanner has no data at that snapshot\n");
    return 1;
  }
  auto snap = world.scan(t, kind);
  obs::Registry metrics;
  core::PipelineOptions options = pipeline_options_from(args);
  options.metrics = &metrics;
  core::OffnetPipeline pipeline(world.topology(), world.ip2as(),
                                world.certs(), world.roots(),
                                core::standard_hg_inputs(), options);
  print_result(world.topology(), pipeline.run(snap));
  maybe_write_metrics(args, metrics);
  return 0;
}

int cmd_export(const Args& args) {
  std::string dir = args.get("out", "");
  if (dir.empty()) return usage();
  scan::World world = build_world(args);
  std::size_t t = snapshot_from(args);
  auto snap = world.scan(t, scan::ScannerKind::kRapid7);

  // Atomic publication: each file is written to a temp next to its
  // final name and renamed only after a verified flush, so a failed or
  // interrupted export never leaves torn dataset files ("silent success"
  // on a full disk was a real bug here).
  scan::export_dataset_to_dir(world, snap, dir);
  obs::Registry metrics;
  metrics.counter(metric_names::kExportCertRecords).add(snap.certs().size());
  metrics.counter(metric_names::kExportFiles).add(6);
  maybe_write_metrics(args, metrics);
  std::printf("exported snapshot %s (%zu cert records) to %s/\n",
              net::study_snapshots()[t].to_string().c_str(),
              snap.certs().size(), dir.c_str());
  return 0;
}

/// --stream: fan parsing out to worker threads (reusing --threads, with
/// 0 meaning all hardware threads) while reading input in bounded
/// batches. Results are bit-identical to the default serial load — the
/// flag only changes peak memory and wall time.
io::stream::StreamOptions stream_options_from(const Args& args) {
  io::stream::StreamOptions stream;
  if (!args.has("stream")) return stream;  // serial (n_threads = 1)
  std::size_t threads = pipeline_options_from(args).n_threads;
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  stream.n_threads = static_cast<int>(std::min<std::size_t>(threads, 1024));
  return stream;
}

/// Loads one snapshot directory; tallies into `report` when given.
io::Dataset load_dir(const std::string& dir, net::YearMonth month,
                     const io::ReadOptions& options,
                     const io::stream::StreamOptions& stream,
                     io::LoadReport* report) {
  auto open = [&dir](const char* name) {
    std::ifstream in(dir + "/" + name);
    if (!in) throw io::LoadError(std::string("cannot read ") + name);
    return in;
  };
  std::ifstream rel = open("relationships.txt");
  std::ifstream org = open("organizations.txt");
  std::ifstream pfx = open("prefix2as.txt");
  std::ifstream certs = open("certificates.tsv");
  std::ifstream hosts = open("hosts.tsv");
  io::Dataset dataset = io::load_dataset_stream(rel, org, pfx, certs, hosts,
                                                month, stream, options,
                                                report);
  {
    std::ifstream headers(dir + "/headers.tsv");
    if (headers) dataset.add_headers(headers, stream, options, report);
  }
  return dataset;
}

int cmd_analyze(const Args& args) {
  std::string dir = args.get("dir", "");
  if (dir.empty()) return usage();
  auto month = net::YearMonth::parse(args.get("month", "2021-04"));
  if (!month) return usage();
  io::ReadOptions options = read_options_from(args);

  io::LoadReport report;
  io::Dataset dataset =
      load_dir(dir, *month, options, stream_options_from(args), &report);
  obs::Registry metrics;
  core::PipelineOptions pipeline_options = pipeline_options_from(args);
  pipeline_options.metrics = &metrics;
  core::OffnetPipeline pipeline(dataset.topology(), dataset.ip2as(),
                                dataset.certs(), dataset.roots(),
                                core::standard_hg_inputs(), pipeline_options);
  auto result = pipeline.run(dataset.snapshot());
  result.health = report.clean() ? core::SnapshotHealth::kComplete
                                 : core::SnapshotHealth::kPartial;
  report.export_metrics(metrics);
  print_result(dataset.topology(), result);
  maybe_write_metrics(args, metrics);
  std::printf("snapshot %s: %s — %s\n", month->to_string().c_str(),
              core::to_string(result.health), report.summary().c_str());
  return 0;
}

int cmd_series(const Args& args) {
  std::string root = args.get("root", "");
  if (root.empty()) return usage();
  io::ReadOptions options = read_options_from(args);
  io::stream::StreamOptions stream = stream_options_from(args);
  auto months = net::study_snapshots();

  auto feed = [&](std::size_t t) {
    core::SnapshotFeed input;
    std::string dir = root + "/" + months[t].to_string();
    std::ifstream probe(dir + "/relationships.txt");
    if (!probe) return input;  // kMissing
    try {
      input.dataset = load_dir(dir, months[t], options, stream, &input.report);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s: unusable: %s\n",
                   months[t].to_string().c_str(), e.what());
      input.dataset.reset();
      input.corrupt = true;
    }
    return input;
  };

  obs::Registry metrics;
  core::PipelineOptions pipeline_options = pipeline_options_from(args);
  pipeline_options.metrics = &metrics;
  if (args.has("delta") && args.has("no-delta")) {
    throw UsageError("--delta and --no-delta are mutually exclusive");
  }
  // Stack-allocated cache: it must outlive the runner, and cmd_series
  // runs exactly one series, so scope-tying is enough.
  core::DeltaCache delta;
  if (args.has("delta")) pipeline_options.delta = &delta;
  core::LongitudinalRunner runner{pipeline_options};

  // Any supervision flag selects the crash-safe runner; a plain series
  // keeps the original fail-fast behaviour. An armed fault plan (or a
  // counting pass over the same path) implies supervision too, so the
  // chaos sweep's baseline, dry-run, and faulted runs all take one code
  // path.
  const bool supervised = args.has("checkpoint-dir") || args.has("resume") ||
                          args.has("max-retries") || args.has("crash-after") ||
                          g_cli_faults_active;
  std::vector<core::SnapshotResult> results;
  if (supervised) {
    core::SupervisorOptions supervisor;
    if (args.has("checkpoint-dir")) {
      const std::string checkpoint_dir = args.get("checkpoint-dir", "");
      std::filesystem::create_directories(checkpoint_dir);
      supervisor.checkpoint_path = checkpoint_dir + "/checkpoint.offnet";
    }
    supervisor.resume = args.has("resume");
    if (supervisor.resume && supervisor.checkpoint_path.empty()) {
      throw UsageError("--resume needs --checkpoint-dir");
    }
    if (args.has("max-retries")) {
      supervisor.max_retries = parse_count(args, "max-retries", 100);
    }
    if (args.has("crash-after")) {
      if (supervisor.checkpoint_path.empty()) {
        throw UsageError("--crash-after needs --checkpoint-dir");
      }
      // Die mid-publish of the (N+1)th checkpoint: after its temp file
      // is written, before the rename — the previous checkpoint stays
      // intact next to a torn .tmp, exactly like a power cut.
      cli_faults().fail_at(core::fault_stage::kCheckpointWrite,
                           parse_count(args, "crash-after", 1000000) + 1,
                           /*abort=*/true);
      supervisor.faults = &cli_faults();
    }
    if (g_cli_faults_active) supervisor.faults = &cli_faults();
    results = runner.run_supervised(feed, supervisor, 0, months.size() - 1);
  } else {
    results = runner.run_loaded(feed, 0, months.size() - 1);
  }

  net::TextTable table({"snapshot", "health", "lines read", "lines skipped",
                        "confirmed off-net ASes"});
  std::size_t usable = 0;
  std::size_t quarantined = 0;
  for (const core::SnapshotResult& result : results) {
    std::size_t confirmed = 0;
    for (const core::HgFootprint& fp : result.per_hg) {
      confirmed += fp.confirmed_ases().size();
    }
    if (result.usable()) ++usable;
    if (result.health == core::SnapshotHealth::kQuarantined) {
      ++quarantined;
      std::fprintf(stderr, "%s: quarantined: %s\n",
                   months[result.snapshot].to_string().c_str(),
                   result.error.c_str());
    }
    table.add(months[result.snapshot].to_string(),
              core::to_string(result.health), result.load_report.lines_ok(),
              result.load_report.lines_skipped(),
              result.usable() ? std::to_string(confirmed) : "-");
  }
  std::fputs(table.to_string().c_str(), stdout);
  maybe_write_metrics(args, metrics);
  std::printf("\n%zu of %zu snapshots usable\n", usable, results.size());
  if (quarantined > 0) {
    std::printf("%zu snapshots quarantined after exhausting retries\n",
                quarantined);
  }
  // Zero usable snapshots means the corpus, not the machinery, failed.
  return usable > 0 ? tools::kExitOk : tools::kExitData;
}

int cmd_query(const Args& args) {
  if (args.has("socket") == args.has("port") || !args.has("send")) {
    return usage();
  }
  svc::Endpoint endpoint;
  if (args.has("socket")) {
    endpoint = svc::Endpoint::unix_socket(args.get("socket", ""));
  } else {
    const std::size_t port = parse_count(args, "port", 65535);
    if (port == 0) throw UsageError("--port must be in [1, 65535]");
    endpoint = svc::Endpoint::tcp_loopback(static_cast<std::uint16_t>(port));
  }
  int timeout_ms = 5000;
  if (args.has("timeout-ms")) {
    timeout_ms = static_cast<int>(parse_count(args, "timeout-ms", 600'000));
  }

  svc::Client client(endpoint, timeout_ms);  // SocketError -> 74 in main
  std::optional<std::string> response = client.request(args.get("send", ""));
  if (!response) {
    std::fprintf(stderr, "error: no response from %s\n",
                 endpoint.to_string().c_str());
    return tools::kExitIo;
  }
  std::printf("%s\n", response->c_str());
  if (response->rfind("OK", 0) == 0) return tools::kExitOk;
  if (response->rfind("BUSY", 0) == 0) return tools::kExitTempFail;
  return tools::kExitData;  // ERR (or an off-protocol response)
}

}  // namespace

namespace {

/// Buffered stdio swallows write errors (e.g. a full disk behind a
/// redirected stdout) unless somebody checks; a report that was never
/// delivered must not exit 0.
int checked_stdout(int rc) {
  if (std::fflush(stdout) != 0 || std::ferror(stdout)) {
    std::fprintf(stderr, "error: writing to standard output failed\n");
    return rc == 0 ? tools::kExitIo : rc;
  }
  return rc;
}

}  // namespace

/// Runs the selected command under the exception-to-exit-code ladder.
/// Exceptions map onto the tools/exit_codes.h taxonomy; most-derived
/// types first.
int dispatch(const Args& args) {
  try {
    if (args.command == "simulate") return checked_stdout(cmd_simulate(args));
    if (args.command == "export") return checked_stdout(cmd_export(args));
    if (args.command == "analyze") return checked_stdout(cmd_analyze(args));
    if (args.command == "series") return checked_stdout(cmd_series(args));
    if (args.command == "query") return checked_stdout(cmd_query(args));
  } catch (const UsageError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return tools::kExitUsage;
  } catch (const svc::SocketError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return tools::kExitIo;
  } catch (const io::IoError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return tools::kExitIo;
  } catch (const core::CheckpointError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return tools::kExitData;
  } catch (const io::LoadError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return tools::kExitData;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return tools::kExitUnexpected;
  }
  return usage();
}

int main(int argc, char** argv) {
  auto args = parse_args(argc, argv);
  if (!args) return usage();
  if (args->has("fail-at")) {
    // Comma-separated specs so one flag can arm several points (e.g. a
    // retry-exhaustion plan: feed:2:throw,feed:3:throw,feed:4:throw).
    std::string_view specs = args->get("fail-at", "");
    while (!specs.empty()) {
      const std::size_t comma = specs.find(',');
      const std::string_view spec = specs.substr(0, comma);
      try {
        core::arm_fault_spec(cli_faults(), spec);
      } catch (const std::invalid_argument& e) {
        std::fprintf(stderr, "error: --fail-at: %s\n", e.what());
        return tools::kExitUsage;
      }
      specs = comma == std::string_view::npos ? std::string_view()
                                              : specs.substr(comma + 1);
    }
  }
  std::optional<core::ScopedSysFaultInjector> sys_seams;
  if (args->has("fail-at") || args->has("fault-counts")) {
    g_cli_faults_active = true;
    sys_seams.emplace(cli_faults());
  }
  const int rc = dispatch(*args);
  // After the ladder, so a faulted run still reports how far it got.
  maybe_write_fault_counts(*args);
  return rc;
}
