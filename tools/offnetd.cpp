// offnetd — the off-net query service (DESIGN.md §11).
//
//   offnetd (--socket PATH | --port N) (--root DIR | --checkpoint FILE)
//           [--workers N] [--queue N] [--deadline-ms N] [--drain-ms N]
//           [--threads N] [--metrics-out FILE] [--enable-sleep]
//
// Loads a longitudinal result set — an export root (DIR/<YYYY-MM>/ per
// snapshot, as written by `offnet_cli export`) or a PR-5 checkpoint
// file — and serves footprint/coverage/co-hosting queries over the line
// protocol (src/svc/protocol.h) until SIGTERM/SIGINT, then drains
// gracefully: stops accepting, finishes in-flight requests within the
// drain deadline, exits 0. Exit codes follow tools/exit_codes.h.
//
// Prints "READY" on stdout once the endpoint is live, so supervisors
// (and tools/check.sh) can wait for it instead of sleeping.
#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <optional>
#include <string>
#include <thread>

#include "core/checkpoint.h"
#include "core/fault.h"
#include "exit_codes.h"
#include "io/atomic_file.h"
#include "io/loaders.h"
#include "obs/exporter.h"
#include "obs/metrics.h"
#include "svc/server.h"

using namespace offnet;

namespace {

/// Signal flags are the only thing a handler touches; the main thread
/// polls them at 50ms granularity and runs the actual drain itself.
volatile std::sig_atomic_t g_stop = 0;

void on_stop_signal(int) { g_stop = 1; }

struct UsageError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

constexpr std::string_view kKnownFlags[] = {
    "socket", "port",        "root",    "checkpoint",   "workers",
    "queue",  "deadline-ms", "drain-ms", "threads",     "metrics-out",
    "enable-sleep", "fail-at", "fault-counts"};

struct Args {
  std::map<std::string, std::string> options;
  const char* get(const std::string& key, const char* fallback) const {
    auto it = options.find(key);
    return it == options.end() ? fallback : it->second.c_str();
  }
  bool has(const std::string& key) const { return options.contains(key); }
};

Args parse_args(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg.substr(0, 2) != "--") {
      throw UsageError("unexpected argument '" + std::string(arg) + "'");
    }
    std::string key(arg.substr(2));
    if (std::find(std::begin(kKnownFlags), std::end(kKnownFlags), key) ==
        std::end(kKnownFlags)) {
      throw UsageError("unknown option --" + key);
    }
    if (i + 1 < argc && std::string_view(argv[i + 1]).substr(0, 2) != "--") {
      args.options[key] = argv[++i];
    } else {
      // assign(1, '1'), not `= "1"`: GCC 12 -Wrestrict misfires on the
      // inlined const char* assignment path at -O2 (same as
      // io/corruption.cpp).
      args.options[key].assign(1, '1');
    }
  }
  return args;
}

int usage() {
  std::fprintf(
      stderr,
      "usage: offnetd (--socket PATH | --port N) (--root DIR | "
      "--checkpoint FILE)\n"
      "               [--workers N] [--queue N] [--deadline-ms N] "
      "[--drain-ms N]\n"
      "               [--threads N] [--metrics-out FILE] [--enable-sleep]\n"
      "  --socket PATH      listen on a Unix-domain socket\n"
      "  --port N           listen on 127.0.0.1:N (0 = ephemeral; the\n"
      "                     bound port is printed on startup)\n"
      "  --root DIR         serve an export root (DIR/<YYYY-MM>/ per "
      "snapshot)\n"
      "  --checkpoint FILE  serve a supervised-run checkpoint\n"
      "  --workers N        worker threads (default 4)\n"
      "  --queue N          admission queue capacity (default 64); a full\n"
      "                     queue sheds new connections with BUSY\n"
      "  --deadline-ms N    default per-request deadline (default 1000)\n"
      "  --drain-ms N       drain deadline after SIGTERM (default 5000)\n"
      "  --threads N        pipeline threads for --root loads and RELOAD\n"
      "  --metrics-out FILE write the service metrics as JSON on exit\n"
      "  --enable-sleep     admit the SLEEP test verb (tests only)\n"
      "  --fail-at STAGE:OCC:MODE[,...]  testing aid; fault the OCC-th\n"
      "                     crossing of STAGE (throw | abort | ENOSPC |\n"
      "                     EIO | EMFILE | EINTR)\n"
      "  --fault-counts FILE write per-stage seam-crossing counts on\n"
      "                     clean exit (offnet_chaos's dry-run pass)\n");
  return tools::kExitUsage;
}

std::int64_t parse_int(const Args& args, const char* flag,
                       std::int64_t fallback, std::int64_t min,
                       std::int64_t max) {
  if (!args.has(flag)) return fallback;
  const char* text = args.get(flag, "");
  char* end = nullptr;
  const long long v = std::strtoll(text, &end, 10);
  if (end == text || *end != '\0' || v < min || v > max) {
    throw UsageError("--" + std::string(flag) + " must be an integer in [" +
                     std::to_string(min) + ", " + std::to_string(max) + "]");
  }
  return v;
}

/// The injector behind --fail-at / --fault-counts: handed to the server
/// for the control-flow stages (svc-reload) and installed as the
/// process-wide seam for the socket/file syscall stages. Function-local
/// static so it outlives the drain.
core::FaultInjector& daemon_faults() {
  static core::FaultInjector faults;
  return faults;
}

/// One `stage count` line per registered stage (zeros included), same
/// format as offnet_cli --fault-counts.
void write_fault_counts(const std::string& path) {
  const auto counts = daemon_faults().occurrence_counts();
  std::string text;
  for (const char* stage : core::fault_stage::kAllStages) {
    const auto it = counts.find(stage);
    text += std::string(stage) + " " +
            std::to_string(it == counts.end() ? 0 : it->second) + "\n";
  }
  io::AtomicFile::write(path, text);
}

int run(int argc, char** argv) {
  const Args args = parse_args(argc, argv);
  if (args.has("socket") == args.has("port")) {
    throw UsageError("exactly one of --socket and --port is required");
  }
  if (args.has("root") == args.has("checkpoint")) {
    throw UsageError("exactly one of --root and --checkpoint is required");
  }

  svc::ServerOptions options;
  if (args.has("socket")) {
    options.endpoint = svc::Endpoint::unix_socket(args.get("socket", ""));
  } else {
    options.endpoint = svc::Endpoint::tcp_loopback(static_cast<std::uint16_t>(
        parse_int(args, "port", 0, 0, 65535)));
  }
  options.n_workers =
      static_cast<std::size_t>(parse_int(args, "workers", 4, 1, 256));
  options.queue_capacity =
      static_cast<std::size_t>(parse_int(args, "queue", 64, 1, 65536));
  options.default_deadline_ms =
      parse_int(args, "deadline-ms", 1000, 1, 3'600'000);
  options.drain_deadline_ms = parse_int(args, "drain-ms", 5000, 1, 600'000);
  options.n_threads =
      static_cast<std::size_t>(parse_int(args, "threads", 1, 0, 1024));
  options.enable_sleep = args.has("enable-sleep");

  obs::Registry metrics;
  options.metrics = &metrics;

  if (args.has("fail-at")) {
    std::string_view specs = args.get("fail-at", "");
    while (!specs.empty()) {
      const std::size_t comma = specs.find(',');
      try {
        core::arm_fault_spec(daemon_faults(), specs.substr(0, comma));
      } catch (const std::invalid_argument& e) {
        throw UsageError(std::string("--fail-at: ") + e.what());
      }
      specs = comma == std::string_view::npos ? std::string_view()
                                              : specs.substr(comma + 1);
    }
  }
  std::optional<core::ScopedSysFaultInjector> sys_seams;
  if (args.has("fail-at") || args.has("fault-counts")) {
    options.faults = &daemon_faults();
    sys_seams.emplace(daemon_faults());
  }

  const std::string source = args.has("root") ? args.get("root", "")
                                              : args.get("checkpoint", "");
  std::fprintf(stderr, "offnetd: loading %s...\n", source.c_str());
  std::shared_ptr<const svc::ServiceSnapshot> snapshot =
      args.has("root")
          ? svc::load_snapshot_from_export_root(source, options.n_threads)
          : svc::load_snapshot_from_checkpoint(source);
  const std::string why = snapshot->validate();
  if (!why.empty()) {
    std::fprintf(stderr, "offnetd: %s: unserviceable: %s\n", source.c_str(),
                 why.c_str());
    return tools::kExitData;
  }

  svc::Server server(std::move(options), std::move(snapshot));
  server.start();

  std::signal(SIGTERM, on_stop_signal);
  std::signal(SIGINT, on_stop_signal);
  std::signal(SIGPIPE, SIG_IGN);

  std::fprintf(stderr,
               "offnetd: serving on %s (workers=%zu queue=%zu "
               "deadline=%lldms)\n",
               server.bound_endpoint().to_string().c_str(),
               server.options().n_workers, server.options().queue_capacity,
               static_cast<long long>(server.options().default_deadline_ms));
  std::printf("READY %s\n", server.bound_endpoint().to_string().c_str());
  std::fflush(stdout);

  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  std::fprintf(stderr, "offnetd: draining...\n");
  server.request_drain();
  const bool clean = server.join();

  if (args.has("metrics-out")) {
    io::AtomicFile::write(args.get("metrics-out", ""),
                          obs::MetricsExporter::to_json(metrics));
  }
  if (args.has("fault-counts")) {
    write_fault_counts(args.get("fault-counts", ""));
  }
  std::fprintf(stderr, "offnetd: %s\n",
               clean ? "drained cleanly" : "drain deadline exceeded");
  return clean ? tools::kExitOk : tools::kExitUnexpected;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const UsageError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return usage();
  } catch (const svc::SocketError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return tools::kExitIo;
  } catch (const io::IoError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return tools::kExitIo;
  } catch (const core::CheckpointError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return tools::kExitData;
  } catch (const io::LoadError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return tools::kExitData;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return tools::kExitUnexpected;
  }
}
