#!/usr/bin/env sh
# Runs clang-tidy (config in .clang-tidy) over the repo's translation
# units using the compile_commands.json of an existing build directory.
# Degrades gracefully: a missing clang-tidy is a notice and exit 0, so
# CI images without LLVM still pass the rest of tools/check.sh.
#
# Usage: tools/run_clang_tidy.sh [build-dir]   (default: build)
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}

tidy=${CLANG_TIDY:-clang-tidy}
if ! command -v "$tidy" >/dev/null 2>&1; then
  echo "run_clang_tidy: $tidy not found; skipping (install clang-tidy" \
       "or set CLANG_TIDY to enable this gate)"
  exit 0
fi

if [ ! -f "$build_dir/compile_commands.json" ]; then
  echo "run_clang_tidy: $build_dir/compile_commands.json not found;" \
       "configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON first"
  exit 2
fi

# Every checked-in translation unit; headers are covered through
# HeaderFilterRegex in .clang-tidy.
files=$(find "$repo_root/src" "$repo_root/tools" "$repo_root/bench" \
             "$repo_root/tests" -name '*.cpp' \
             -not -path '*/lint_fixtures/*' | sort)

status=0
for file in $files; do
  "$tidy" -p "$build_dir" --quiet "$file" || status=1
done

if [ "$status" -ne 0 ]; then
  echo "run_clang_tidy: findings above must be fixed (or the check" \
       "NOLINT'ed with a reason)"
fi
exit "$status"
